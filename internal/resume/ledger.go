// Lease ledger: the distributed extension of the checkpoint journal.
//
// Where the Journal rewrites one atomic snapshot per checkpoint (right
// for a single process owning its file), the Ledger is an append-only
// NDJSON log in a directory, designed for a coordinator that must
// survive its own crash AND defend against a predecessor that does not
// know it is dead. Two fencing mechanisms stack:
//
//   - Writer epochs fence whole processes. Opening a ledger acquires
//     the next epoch by creating an epoch.<n> marker file with
//     O_EXCL — an atomic, crash-safe acquisition. Every append first
//     checks that no successor epoch exists; a stale coordinator's
//     append fails with ErrFenced instead of corrupting the log.
//   - Lease tokens fence individual workers. The coordinator stamps
//     every claim with a monotonically increasing token and records
//     it here; a zombie worker's late commit carries a superseded
//     token and is rejected upstream (and audited as an op "fence"
//     record when the coordinator chooses to log it).
//
// Appends are synced to disk record by record — a commit acknowledged
// to a worker is durable — and replay tolerates a torn tail exactly
// like the journal: every fully parseable prefix record is recovered,
// the bytes after the first torn record are ignored. Because epochs
// serialize writers, a torn record is always the last thing a dead
// writer did; no valid record can follow it.
package resume

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"compaction/internal/sim"
)

// ErrFenced reports an operation by a writer (or a lease holder) that
// has been superseded: a newer epoch owns the ledger, or a newer token
// owns the lease.
var ErrFenced = errors.New("resume: fenced: a newer writer owns this ledger")

// Op enumerates the lease-ledger record kinds.
type Op string

// The lease lifecycle operations a ledger records.
const (
	// OpClaim: a worker was granted a lease on a cell.
	OpClaim Op = "claim"
	// OpRenew: the worker heartbeat its lease before expiry.
	OpRenew Op = "renew"
	// OpCommit: the cell completed; Result carries the outcome. The
	// first commit per cell wins; replay ignores later ones.
	OpCommit Op = "commit"
	// OpRelease: the lease was given back unfinished — graceful worker
	// drain, or coordinator-side expiry ahead of reassignment.
	OpRelease Op = "release"
	// OpFail: an attempt failed; Attempt carries the cross-worker
	// failure count so far.
	OpFail Op = "fail"
	// OpQuarantine: the cell failed MaxFailures times across workers
	// and is now a poison-cell hole; it will not be leased again.
	OpQuarantine Op = "quarantine"
	// OpFence: audit record of a rejected stale commit (zombie worker).
	OpFence Op = "fence"
)

// LeaseRecord is one appended ledger line.
type LeaseRecord struct {
	Op          Op          `json:"op"`
	Cell        int         `json:"cell"`
	Fingerprint string      `json:"fp,omitempty"`
	Worker      string      `json:"worker,omitempty"`
	Token       uint64      `json:"token"`
	Attempt     int         `json:"attempt,omitempty"`
	Reason      string      `json:"reason,omitempty"`
	Result      *sim.Result `json:"result,omitempty"`
}

// ledgerFile is the append-only log inside a ledger directory.
const ledgerFile = "ledger.ndjson"

// epochPrefix names the epoch marker files: epoch.00000001, … The
// numbering is dense — each new writer creates exactly max+1 — so a
// writer checks for its successor with a single stat.
const epochPrefix = "epoch."

func epochName(n uint64) string {
	return fmt.Sprintf("%s%08d", epochPrefix, n)
}

// Ledger is an append-only, epoch-fenced lease log bound to one grid.
// It is safe for concurrent use.
type Ledger struct {
	mu    sync.Mutex
	dir   string
	f     *os.File
	epoch uint64
	hdr   header
	bound bool
}

// OpenLedger opens (creating if needed) the ledger directory and
// acquires the next writer epoch. The returned ledger holds the epoch
// until a later OpenLedger on the same directory supersedes it, at
// which point every Append fails with ErrFenced.
func OpenLedger(dir string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	max, err := maxEpoch(dir)
	if err != nil {
		return nil, err
	}
	// Acquire the next epoch: O_EXCL creation is atomic, so exactly one
	// contender wins each number; losers step forward and retry.
	epoch := max
	for {
		epoch++
		f, err := os.OpenFile(filepath.Join(dir, epochName(epoch)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if errors.Is(err, os.ErrExist) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("resume: acquiring ledger epoch: %w", err)
		}
		f.Close()
		break
	}
	f, err := os.OpenFile(filepath.Join(dir, ledgerFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	// Make the epoch acquisition and the log file durable before any
	// record references them.
	if err := fsyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	l := &Ledger{dir: dir, f: f, epoch: epoch}
	if st, err := l.Replay(); err != nil {
		f.Close()
		return nil, err
	} else if st.Bound {
		l.hdr, l.bound = st.hdr, true
	}
	return l, nil
}

// maxEpoch scans the directory for the highest epoch marker.
func maxEpoch(dir string) (uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("resume: %w", err)
	}
	var max uint64
	for _, e := range ents {
		num, ok := strings.CutPrefix(e.Name(), epochPrefix)
		if !ok {
			continue
		}
		n, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		if n > max {
			max = n
		}
	}
	return max, nil
}

// Epoch returns this writer's fencing epoch.
func (l *Ledger) Epoch() uint64 { return l.epoch }

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.dir }

// Bind ties the ledger to a grid, exactly like Journal.Bind: a fresh
// ledger adopts the identity (writing the header record durably); a
// replayed one must match or Bind returns ErrMismatch.
func (l *Ledger) Bind(gridFP string, cells int, params string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	want := header{Version: Version, Grid: gridFP, Cells: cells, Params: params}
	if l.bound {
		if l.hdr != want {
			return fmt.Errorf("%w: ledger %s holds grid %s (%d cells, params %q), running grid %s (%d cells, params %q)",
				ErrMismatch, l.dir, l.hdr.Grid, l.hdr.Cells, l.hdr.Params, gridFP, cells, params)
		}
		return nil
	}
	if err := l.appendLocked(want); err != nil {
		return err
	}
	l.hdr, l.bound = want, true
	return nil
}

// Append durably appends one lease record. It fails with ErrFenced
// when a newer epoch has been acquired on the directory: the stale
// writer learns it is dead the moment it tries to write, and the log
// stays single-writer by construction.
func (l *Ledger) Append(rec LeaseRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.bound {
		return fmt.Errorf("resume: ledger Append before Bind")
	}
	return l.appendLocked(rec)
}

// appendLocked checks the fence, then writes and syncs one JSON line.
func (l *Ledger) appendLocked(v any) error {
	if l.f == nil {
		return fmt.Errorf("resume: ledger is closed")
	}
	// Dense epoch numbering makes the fence check one stat: any
	// successor must have created exactly epoch+1.
	if _, err := os.Stat(filepath.Join(l.dir, epochName(l.epoch+1))); err == nil {
		return fmt.Errorf("%w (this writer holds epoch %d)", ErrFenced, l.epoch)
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("resume: checking ledger fence: %w", err)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	if _, err := l.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	return nil
}

// Close releases the log file handle. The epoch marker stays: epochs
// are never reused, and a closed ledger is indistinguishable from a
// crashed one — successors fence it either way.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	return nil
}

// LedgerState is the outcome of replaying a ledger directory: the grid
// binding, the first commit per cell, quarantined cells, and the
// high-water fencing token (so a resumed coordinator issues strictly
// newer tokens than any lease ever granted).
type LedgerState struct {
	hdr   header
	Bound bool
	// Grid, Cells, Params echo the header when Bound.
	Grid   string
	Cells  int
	Params string
	// Commits maps cell index to its first committed record.
	Commits map[int]LeaseRecord
	// Quarantined maps cell index to the quarantine reason.
	Quarantined map[int]string
	// MaxToken is the highest token appearing in any record.
	MaxToken uint64
}

// Replay reads the ledger back. Torn trailing bytes — the signature of
// a writer killed mid-append — end the replay at the last fully
// parseable record; everything before is recovered.
func (l *Ledger) Replay() (*LedgerState, error) {
	return replayLedger(filepath.Join(l.dir, ledgerFile))
}

// ReplayLedger reads the ledger log in dir without opening a writer
// epoch — a read-only inspection of the lease history.
func ReplayLedger(dir string) (*LedgerState, error) {
	return replayLedger(filepath.Join(dir, ledgerFile))
}

func replayLedger(path string) (*LedgerState, error) {
	st := &LedgerState{
		Commits:     make(map[int]LeaseRecord),
		Quarantined: make(map[int]string),
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		return st, nil
	}
	if err := json.Unmarshal(sc.Bytes(), &st.hdr); err != nil || st.hdr.Grid == "" {
		// A torn or foreign first line: treat as an empty ledger rather
		// than failing the boot — the caller's Bind decides whether the
		// directory is reusable.
		return &LedgerState{Commits: st.Commits, Quarantined: st.Quarantined}, nil
	}
	if st.hdr.Version != Version {
		return nil, fmt.Errorf("resume: %s: ledger version %d, want %d", path, st.hdr.Version, Version)
	}
	st.Bound = true
	st.Grid, st.Cells, st.Params = st.hdr.Grid, st.hdr.Cells, st.hdr.Params
	for sc.Scan() {
		var rec LeaseRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Op == "" {
			// Torn tail: keep the recovered prefix, drop the rest.
			break
		}
		if rec.Token > st.MaxToken {
			st.MaxToken = rec.Token
		}
		switch rec.Op {
		case OpCommit:
			if _, ok := st.Commits[rec.Cell]; !ok {
				st.Commits[rec.Cell] = rec
			}
		case OpQuarantine:
			st.Quarantined[rec.Cell] = rec.Reason
		}
	}
	return st, nil
}

// RemoveLedger deletes a completed ledger directory — the analog of
// Journal.Remove once a grid finished with no holes. A missing
// directory is not an error.
func RemoveLedger(dir string) error {
	if err := os.RemoveAll(dir); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("resume: %w", err)
	}
	return nil
}
