package markcompact

import (
	"testing"

	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
	"compaction/internal/workload"
)

func TestUnlimitedBudgetStaysDense(t *testing.T) {
	// With c = 0 the manager compacts every round: the heap never
	// exceeds the live peak plus the current round's allocations.
	cfg := sim.Config{M: 1 << 10, N: 1 << 4, C: 0, Pow2Only: true}
	mgr := New()
	prog := workload.NewRampDown(1)
	e, err := sim.NewEngine(cfg, prog, mgr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.WasteFactor() > 1.01 {
		t.Fatalf("ideal compactor wasted %.3f·M", res.WasteFactor())
	}
	if res.Moves == 0 {
		t.Fatal("never compacted")
	}
}

func TestBudgetedCompactionRespectsLedger(t *testing.T) {
	cfg := sim.Config{M: 1 << 12, N: 1 << 6, C: 8, Pow2Only: true}
	mgr := New()
	prog := workload.NewRandom(workload.Config{Seed: 3, Rounds: 80, ChurnFrac: 0.5})
	e, err := sim.NewEngine(cfg, prog, mgr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved*8 > res.Allocated {
		t.Fatalf("budget violated: moved %d of %d", res.Moved, res.Allocated)
	}
}

func TestSlidePreservesAddressOrder(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 1 << 5, C: 0, Pow2Only: true}
	mgr := New()
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{32, 32, 32, 32}},
		{FreeRefs: []int{0, 2}},
		{}, // compaction round
	})
	e, err := sim.NewEngine(cfg, prog, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Survivors (originally at 32 and 96) must now sit at 0 and 32 in
	// the same relative order.
	s1, _ := prog.PlacementOf(1)
	s3, _ := prog.PlacementOf(3)
	if s1.Addr != 0 || s3.Addr != 32 {
		t.Fatalf("slide order wrong: %v %v", s1, s3)
	}
}

func TestRegistered(t *testing.T) {
	mgr, err := mm.New("mark-compact")
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Name() != "mark-compact" {
		t.Fatalf("name = %q", mgr.Name())
	}
}

func TestNonMovingDegenerate(t *testing.T) {
	// With c = NoCompaction the manager is effectively first-fit.
	cfg := sim.Config{M: 1 << 10, N: 1 << 4, C: -1, Pow2Only: true}
	mgr := New()
	prog := workload.NewRandom(workload.Config{Seed: 5, Rounds: 40})
	e, err := sim.NewEngine(cfg, prog, mgr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Fatalf("moved %d times with no budget", res.Moves)
	}
}
