// Package markcompact implements a classical stop-the-world
// mark-compact collector in the simulation model: allocation is
// first-fit over the free list, and whenever the compaction budget
// covers the whole live set, every object slides to the bottom of the
// heap in address order (the LISP-2 / "sliding" order, which preserves
// allocation order and produces a perfectly dense heap).
//
// With an unlimited budget (c = 0) this is the ideal full compactor
// whose heap never exceeds max-live — the "overhead factor 1" baseline
// the paper's introduction contrasts against. With a finite c it
// degenerates gracefully: full slides happen only as often as the
// budget allows, which is exactly the regime the paper's bounds govern.
package markcompact

import (
	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// Manager is the sliding mark-compact manager.
type Manager struct {
	mm.Base
	// scanBuf is the reused address-ordered object buffer for scans.
	scanBuf []heap.Object
	live    word.Size
}

var (
	_ sim.Manager        = (*Manager)(nil)
	_ sim.RoundCompactor = (*Manager)(nil)
)

// New returns an empty manager.
func New() *Manager { return &Manager{} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "mark-compact" }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	m.Base.Reset(cfg)
	m.live = 0
}

// Free implements sim.Manager.
func (m *Manager) Free(id heap.ObjectID, s heap.Span) {
	m.live -= s.Size
	m.Base.Free(id, s)
}

// StartRound implements sim.RoundCompactor: run a full sliding
// compaction when the budget covers the live set and holes exist.
func (m *Manager) StartRound(mv sim.Mover) {
	if mv.Remaining() < m.live {
		return
	}
	m.scanBuf = m.AppendObjectsByAddr(m.scanBuf)
	objs := m.scanBuf
	var frontier word.Addr
	fragmented := false
	for _, o := range objs {
		if o.Span.Addr != frontier {
			fragmented = true
			break
		}
		frontier = o.Span.End()
	}
	if !fragmented {
		return
	}
	frontier = 0
	for _, o := range objs {
		cur, ok := m.Objs.Get(o.ID)
		if !ok {
			continue
		}
		if cur.Addr != frontier {
			if mv.Remaining() < cur.Size {
				return
			}
			removed, err := m.MoveObject(mv, o.ID, frontier)
			if err != nil {
				return
			}
			if removed {
				m.live -= cur.Size
				continue
			}
		}
		frontier += cur.Size
	}
}

// Allocate implements sim.Manager (first-fit).
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, _ sim.Mover) (word.Addr, error) {
	addr, err := m.FS.AllocFirstFit(size)
	if err != nil {
		return 0, err
	}
	m.Record(id, heap.Span{Addr: addr, Size: size})
	m.live += size
	return addr, nil
}

func init() {
	mm.Register("mark-compact", func() sim.Manager { return New() })
}
