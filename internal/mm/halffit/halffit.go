// Package halffit implements Ogasawara's Half-Fit allocator (RTCSA
// 1995), the O(1) predecessor of TLSF: free blocks are indexed by a
// single-level power-of-two table, allocation takes from the first
// non-empty class that guarantees a fit (index ⌈log2 size⌉), and
// freed blocks coalesce with their physical neighbours. The guaranteed
// fit costs internal waste — a request may be served from a block up
// to twice its size even when a closer fit exists, the trait the
// allocator is named for.
package halffit

import (
	"fmt"
	"math/bits"

	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

const maxClasses = 48

type blk struct {
	span       heap.Span
	free       bool
	prev, next *blk
}

// Manager is the half-fit allocator.
type Manager struct {
	lists  [maxClasses]*blk
	bitmap uint64
	byAddr map[word.Addr]*blk
	byEnd  map[word.Addr]*blk
	objs   map[heap.ObjectID]*blk
}

var _ sim.Manager = (*Manager)(nil)

// New returns an empty half-fit manager.
func New() *Manager { return &Manager{} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "half-fit" }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	m.lists = [maxClasses]*blk{}
	m.bitmap = 0
	m.byAddr = make(map[word.Addr]*blk)
	m.byEnd = make(map[word.Addr]*blk)
	m.objs = make(map[heap.ObjectID]*blk)
	m.link(&blk{span: heap.Span{Addr: 0, Size: cfg.Capacity}})
}

// class of a FREE block: the largest i with 2^i <= size, so every
// block in class i has size >= 2^i.
func classOf(size word.Size) int { return word.Log2(size) }

func (m *Manager) link(b *blk) {
	c := classOf(b.span.Size)
	b.free = true
	b.prev = nil
	b.next = m.lists[c]
	if b.next != nil {
		b.next.prev = b
	}
	m.lists[c] = b
	m.bitmap |= 1 << uint(c)
	m.byAddr[b.span.Addr] = b
	m.byEnd[b.span.End()] = b
}

func (m *Manager) unlink(b *blk) {
	c := classOf(b.span.Size)
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		m.lists[c] = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
	if m.lists[c] == nil {
		m.bitmap &^= 1 << uint(c)
	}
	b.prev, b.next = nil, nil
	b.free = false
	delete(m.byAddr, b.span.Addr)
	delete(m.byEnd, b.span.End())
}

// Allocate implements sim.Manager: O(1) guaranteed-fit lookup.
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, _ sim.Mover) (word.Addr, error) {
	// Any block in class >= ceil(log2 size) fits.
	c := word.CeilLog2(size)
	mask := m.bitmap &^ (uint64(1)<<uint(c) - 1)
	if mask == 0 {
		// The guaranteed classes are empty; the class below may still
		// hold a block that happens to fit (sizes in [2^(c-1), 2^c)).
		// Half-fit proper skips this search; we keep it O(length of
		// one list) and only as a last resort before failing.
		if c > 0 {
			for b := m.lists[c-1]; b != nil; b = b.next {
				if b.span.Size >= size {
					return m.take(id, b, size), nil
				}
			}
		}
		return 0, heap.ErrNoFit
	}
	b := m.lists[bits.TrailingZeros64(mask)]
	if b.span.Size < size {
		panic(fmt.Sprintf("half-fit: class invariant broken: %v for %d", b.span, size))
	}
	return m.take(id, b, size), nil
}

func (m *Manager) take(id heap.ObjectID, b *blk, size word.Size) word.Addr {
	m.unlink(b)
	if rem := b.span.Size - size; rem > 0 {
		m.link(&blk{span: heap.Span{Addr: b.span.Addr + size, Size: rem}})
		b.span.Size = size
	}
	m.objs[id] = b
	return b.span.Addr
}

// Free implements sim.Manager with boundary coalescing.
func (m *Manager) Free(id heap.ObjectID, s heap.Span) {
	b, ok := m.objs[id]
	if !ok || b.span != s {
		panic(fmt.Sprintf("half-fit: Free(%d, %v) does not match record", id, s))
	}
	delete(m.objs, id)
	if p, ok := m.byEnd[b.span.Addr]; ok && p.free {
		m.unlink(p)
		b.span = heap.Span{Addr: p.span.Addr, Size: p.span.Size + b.span.Size}
	}
	if n, ok := m.byAddr[b.span.End()]; ok && n.free {
		m.unlink(n)
		b.span.Size += n.span.Size
	}
	m.link(b)
}

func init() {
	mm.Register("half-fit", func() sim.Manager { return New() })
}
