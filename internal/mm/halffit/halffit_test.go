package halffit

import (
	"math/rand"
	"testing"

	"compaction/internal/heap"
	"compaction/internal/sim"
	"compaction/internal/word"
)

func reset(capacity word.Size) *Manager {
	m := New()
	m.Reset(sim.Config{M: capacity, N: 64, C: -1, Capacity: capacity})
	return m
}

func TestGuaranteedFitClass(t *testing.T) {
	m := reset(1 << 10)
	// Carve free blocks of 10 and 40 words (classes 3 and 5) separated
	// by live objects.
	a1, _ := m.Allocate(1, 10, nil)
	a2, _ := m.Allocate(2, 4, nil)
	a3, _ := m.Allocate(3, 40, nil)
	a4, _ := m.Allocate(4, 4, nil)
	_ = a2
	_ = a4
	m.Free(1, heap.Span{Addr: a1, Size: 10})
	m.Free(3, heap.Span{Addr: a3, Size: 40})
	// A 12-word request needs class ceil(log2 12) = 4: the 10-word
	// block (class 3) is skipped even though... it doesn't fit anyway;
	// an 8-word request needs class 3: the 10-word block serves it.
	a, err := m.Allocate(5, 8, nil)
	if err != nil || a != a1 {
		t.Fatalf("8-word alloc at %d (%v), want %d", a, err, a1)
	}
	// A 12-word request: class 4 → the 40-word block (class 5) serves.
	a, err = m.Allocate(6, 12, nil)
	if err != nil || a != a3 {
		t.Fatalf("12-word alloc at %d (%v), want %d", a, err, a3)
	}
}

func TestHalfFitWasteTrait(t *testing.T) {
	// The defining trait: a request of 2^k+1 skips blocks of size
	// < 2^(k+1) even if one would fit exactly. Build a heap whose only
	// free blocks are one of size 9 and one of size 16: a 9-word
	// request takes the 16 (class 4), not the exact 9 (class 3).
	m := reset(1 << 10)
	a1, _ := m.Allocate(1, 9, nil)
	m.Allocate(2, 7, nil)
	a3, _ := m.Allocate(3, 16, nil)
	m.Allocate(4, 992-9-7-16, nil) // consume the tail
	m.Free(1, heap.Span{Addr: a1, Size: 9})
	m.Free(3, heap.Span{Addr: a3, Size: 16})
	a, err := m.Allocate(5, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != a3 {
		t.Fatalf("half-fit took %d, expected the class-guaranteed block at %d", a, a3)
	}
}

func TestFallbackScanBeforeFailing(t *testing.T) {
	// Only a size-9 block exists (class 3). A 9-word request's
	// guaranteed class 4 is empty; the fallback scan must find it.
	m := reset(32)
	a1, _ := m.Allocate(1, 9, nil)
	m.Allocate(2, 23, nil)
	m.Free(1, heap.Span{Addr: a1, Size: 9})
	a, err := m.Allocate(3, 9, nil)
	if err != nil || a != a1 {
		t.Fatalf("fallback alloc at %d (%v), want %d", a, err, a1)
	}
}

func TestCoalescing(t *testing.T) {
	m := reset(256)
	spans := make([]heap.Span, 4)
	for i := range spans {
		a, err := m.Allocate(heap.ObjectID(i), 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		spans[i] = heap.Span{Addr: a, Size: 64}
	}
	for i := range spans {
		m.Free(heap.ObjectID(i), spans[i])
	}
	if _, err := m.Allocate(9, 256, nil); err != nil {
		t.Fatalf("heap did not coalesce: %v", err)
	}
}

func TestRandomizedNoOverlap(t *testing.T) {
	const capacity = 1 << 10
	m := reset(capacity)
	used := make([]bool, capacity)
	rng := rand.New(rand.NewSource(41))
	type rec struct {
		id heap.ObjectID
		s  heap.Span
	}
	var live []rec
	next := heap.ObjectID(1)
	for step := 0; step < 6000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			size := word.Size(1 + rng.Intn(64))
			addr, err := m.Allocate(next, size, nil)
			if err != nil {
				continue
			}
			s := heap.Span{Addr: addr, Size: size}
			for a := s.Addr; a < s.End(); a++ {
				if used[a] {
					t.Fatalf("step %d: overlap at %d", step, a)
				}
				used[a] = true
			}
			live = append(live, rec{next, s})
			next++
		} else {
			i := rng.Intn(len(live))
			r := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			m.Free(r.id, r.s)
			for a := r.s.Addr; a < r.s.End(); a++ {
				used[a] = false
			}
		}
	}
}

func TestUnitRequestEmptyHeap(t *testing.T) {
	m := reset(4)
	if _, err := m.Allocate(1, 4, nil); err != nil {
		t.Fatal(err)
	}
	// Heap full; a 1-word request must fail cleanly (class 0, no
	// fallback list below).
	if _, err := m.Allocate(2, 1, nil); err != heap.ErrNoFit {
		t.Fatalf("want ErrNoFit, got %v", err)
	}
}
