// Package tlsf implements a Two-Level Segregated Fit allocator
// (Masmano et al., "TLSF: a new dynamic memory allocator for real-time
// systems", ECRTS 2004) as a non-moving manager. TLSF is the standard
// allocator of real-time systems — exactly the domain the paper's
// bounds speak to: its O(1) good-fit policy bounds allocation *time*,
// while Theorem 1 bounds the *space* no policy can beat.
//
// Free blocks are indexed by a two-level bitmap: the first level is
// the power-of-two size class (fl = ⌊log2 size⌋), the second level
// subdivides each class linearly into up to 16 ranges. Freeing
// coalesces with both physical neighbours via boundary lookup tables.
package tlsf

import (
	"fmt"
	"math/bits"

	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

const (
	// slShift is log2 of the number of second-level subdivisions.
	slShift = 4
	slCount = 1 << slShift
	// maxFL covers sizes up to 2^48 words.
	maxFL = 48
)

// blk is a free or allocated block. Free blocks are linked into their
// (fl, sl) list.
type blk struct {
	span       heap.Span
	free       bool
	prev, next *blk // free-list links
}

// Manager is the TLSF allocator.
type Manager struct {
	lists    [maxFL][slCount]*blk
	flBitmap uint64
	slBitmap [maxFL]uint32
	// byAddr/byEnd locate blocks by their boundaries for coalescing.
	byAddr map[word.Addr]*blk
	byEnd  map[word.Addr]*blk
	objs   map[heap.ObjectID]*blk
}

var _ sim.Manager = (*Manager)(nil)

// New returns an empty TLSF manager.
func New() *Manager { return &Manager{} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "tlsf" }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	m.lists = [maxFL][slCount]*blk{}
	m.flBitmap = 0
	m.slBitmap = [maxFL]uint32{}
	m.byAddr = make(map[word.Addr]*blk)
	m.byEnd = make(map[word.Addr]*blk)
	m.objs = make(map[heap.ObjectID]*blk)
	all := &blk{span: heap.Span{Addr: 0, Size: cfg.Capacity}, free: true}
	m.link(all)
}

// mapping returns the (fl, sl) class of a block size.
func mapping(size word.Size) (int, int) {
	fl := word.Log2(size)
	if fl < slShift {
		// Small classes have fewer than slCount distinct sizes; use
		// the offset within the class directly.
		return fl, int(size - word.Pow2(fl))
	}
	sl := int((size >> uint(fl-slShift)) - slCount)
	return fl, sl
}

// mappingSearch returns the class to start searching from so that any
// block found is guaranteed to fit a request of the given size (the
// classic round-up trick).
func mappingSearch(size word.Size) (int, int) {
	fl := word.Log2(size)
	if fl >= slShift && size&(word.Pow2(fl-slShift)-1) != 0 {
		size += word.Pow2(fl-slShift) - 1
	}
	return mapping(size)
}

func (m *Manager) link(b *blk) {
	fl, sl := mapping(b.span.Size)
	b.free = true
	b.prev = nil
	b.next = m.lists[fl][sl]
	if b.next != nil {
		b.next.prev = b
	}
	m.lists[fl][sl] = b
	m.flBitmap |= 1 << uint(fl)
	m.slBitmap[fl] |= 1 << uint(sl)
	m.byAddr[b.span.Addr] = b
	m.byEnd[b.span.End()] = b
}

func (m *Manager) unlink(b *blk) {
	fl, sl := mapping(b.span.Size)
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		m.lists[fl][sl] = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
	if m.lists[fl][sl] == nil {
		m.slBitmap[fl] &^= 1 << uint(sl)
		if m.slBitmap[fl] == 0 {
			m.flBitmap &^= 1 << uint(fl)
		}
	}
	b.prev, b.next = nil, nil
	b.free = false
	delete(m.byAddr, b.span.Addr)
	delete(m.byEnd, b.span.End())
}

// findFit locates the head of the smallest non-empty list whose blocks
// all fit size. O(1) via the bitmaps.
func (m *Manager) findFit(size word.Size) *blk {
	fl, sl := mappingSearch(size)
	// Lists at (fl, >= sl)?
	if mask := m.slBitmap[fl] &^ (uint32(1)<<uint(sl) - 1); mask != 0 {
		return m.lists[fl][bits.TrailingZeros32(mask)]
	}
	// Otherwise any list at a higher fl.
	if mask := m.flBitmap &^ (uint64(1)<<uint(fl+1) - 1); mask != 0 {
		fl2 := bits.TrailingZeros64(mask)
		sl2 := bits.TrailingZeros32(m.slBitmap[fl2])
		return m.lists[fl2][sl2]
	}
	return nil
}

// Allocate implements sim.Manager.
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, _ sim.Mover) (word.Addr, error) {
	b := m.findFit(size)
	if b == nil {
		return 0, heap.ErrNoFit
	}
	if b.span.Size < size {
		panic(fmt.Sprintf("tlsf: good-fit invariant broken: block %v for request %d", b.span, size))
	}
	m.unlink(b)
	if rem := b.span.Size - size; rem > 0 {
		m.link(&blk{span: heap.Span{Addr: b.span.Addr + size, Size: rem}, free: true})
		b.span.Size = size
	}
	m.objs[id] = b
	return b.span.Addr, nil
}

// Free implements sim.Manager with immediate boundary coalescing.
func (m *Manager) Free(id heap.ObjectID, s heap.Span) {
	b, ok := m.objs[id]
	if !ok || b.span != s {
		panic(fmt.Sprintf("tlsf: Free(%d, %v) does not match record", id, s))
	}
	delete(m.objs, id)
	// Merge with the physical predecessor if free.
	if p, ok := m.byEnd[b.span.Addr]; ok && p.free {
		m.unlink(p)
		b.span = heap.Span{Addr: p.span.Addr, Size: p.span.Size + b.span.Size}
	}
	// Merge with the physical successor if free.
	if n, ok := m.byAddr[b.span.End()]; ok && n.free {
		m.unlink(n)
		b.span.Size += n.span.Size
	}
	m.link(b)
}

// FreeLists reports the number of free blocks per first-level class,
// for tests.
func (m *Manager) FreeLists() map[int]int {
	out := make(map[int]int)
	for fl := range m.lists {
		for sl := range m.lists[fl] {
			for b := m.lists[fl][sl]; b != nil; b = b.next {
				out[fl]++
			}
		}
	}
	return out
}

func init() {
	mm.Register("tlsf", func() sim.Manager { return New() })
}
