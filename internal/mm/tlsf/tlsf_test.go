package tlsf

import (
	"math/rand"
	"testing"

	"compaction/internal/heap"
	"compaction/internal/sim"
	"compaction/internal/word"
)

func reset(capacity word.Size) *Manager {
	m := New()
	m.Reset(sim.Config{M: capacity, N: 64, C: -1, Capacity: capacity})
	return m
}

func TestMapping(t *testing.T) {
	cases := []struct {
		size   word.Size
		fl, sl int
	}{
		{1, 0, 0}, {2, 1, 0}, {3, 1, 1}, {4, 2, 0}, {7, 2, 3},
		{16, 4, 0}, {17, 4, 1}, {31, 4, 15}, {32, 5, 0},
		{48, 5, 8}, {1024, 10, 0}, {1024 + 64, 10, 1},
	}
	for _, c := range cases {
		fl, sl := mapping(c.size)
		if fl != c.fl || sl != c.sl {
			t.Errorf("mapping(%d) = (%d,%d), want (%d,%d)", c.size, fl, sl, c.fl, c.sl)
		}
	}
}

func TestMappingSearchGuaranteesFit(t *testing.T) {
	// Every block in class >= mappingSearch(size) must fit size.
	for size := word.Size(1); size <= 4096; size++ {
		fl, sl := mappingSearch(size)
		// The smallest block that maps into (fl, sl):
		var minBlock word.Size
		if fl < slShift {
			minBlock = word.Pow2(fl) + word.Size(sl)
		} else {
			minBlock = word.Pow2(fl) + word.Size(sl)<<uint(fl-slShift)
		}
		if minBlock < size {
			t.Fatalf("size %d: search class (%d,%d) admits block %d < request",
				size, fl, sl, minBlock)
		}
	}
}

func TestAllocateSplitsAndReuses(t *testing.T) {
	m := reset(1024)
	a, err := m.Allocate(1, 100, nil)
	if err != nil || a != 0 {
		t.Fatalf("first alloc at %d (%v)", a, err)
	}
	b, err := m.Allocate(2, 50, nil)
	if err != nil || b != 100 {
		t.Fatalf("second alloc at %d (%v), want 100", b, err)
	}
	m.Free(1, heap.Span{Addr: 0, Size: 100})
	c, err := m.Allocate(3, 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("freed space not reused: got %d", c)
	}
}

func TestCoalescingBothSides(t *testing.T) {
	m := reset(1 << 12)
	spans := make(map[heap.ObjectID]heap.Span)
	for i := heap.ObjectID(1); i <= 3; i++ {
		a, err := m.Allocate(i, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		spans[i] = heap.Span{Addr: a, Size: 64}
	}
	// Free outer two, then the middle: all three must merge with the
	// trailing space into one block.
	m.Free(1, spans[1])
	m.Free(3, spans[3])
	m.Free(2, spans[2])
	lists := m.FreeLists()
	total := 0
	for _, n := range lists {
		total += n
	}
	if total != 1 {
		t.Fatalf("free blocks after full coalesce = %d, want 1 (%v)", total, lists)
	}
	// And the whole heap is allocatable again.
	if _, err := m.Allocate(9, 1<<12, nil); err != nil {
		t.Fatalf("full-heap alloc after coalesce: %v", err)
	}
}

func TestNoFit(t *testing.T) {
	m := reset(128)
	if _, err := m.Allocate(1, 128, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate(2, 1, nil); err != heap.ErrNoFit {
		t.Fatalf("expected ErrNoFit, got %v", err)
	}
}

func TestGoodFitPrefersTightClass(t *testing.T) {
	m := reset(1 << 14)
	// Carve the heap into two free blocks: one small (72) and one huge.
	a1, _ := m.Allocate(1, 72, nil)
	a2, _ := m.Allocate(2, 64, nil) // separator
	m.Free(1, heap.Span{Addr: a1, Size: 72})
	_ = a2
	// A request of 70 rounds up to class search; the 72-block fits and
	// should be chosen over splitting the huge tail.
	a3, err := m.Allocate(3, 70, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a3 != a1 {
		t.Fatalf("good fit chose %d, want the 72-word hole at %d", a3, a1)
	}
}

func TestFreePanicsOnMismatch(t *testing.T) {
	m := reset(1024)
	a, _ := m.Allocate(1, 16, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Free did not panic")
		}
	}()
	m.Free(1, heap.Span{Addr: a + 1, Size: 16})
}

// Fuzz the allocator against a brute-force free-space model.
func TestTLSFAgainstReferenceModel(t *testing.T) {
	const capacity = 1 << 10
	m := reset(capacity)
	used := make([]bool, capacity)
	rng := rand.New(rand.NewSource(13))
	type rec struct {
		id heap.ObjectID
		s  heap.Span
	}
	var live []rec
	next := heap.ObjectID(1)
	for step := 0; step < 6000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			size := word.Size(1 + rng.Intn(64))
			addr, err := m.Allocate(next, size, nil)
			if err != nil {
				continue // heap can be genuinely fragmented/full
			}
			s := heap.Span{Addr: addr, Size: size}
			for a := s.Addr; a < s.End(); a++ {
				if used[a] {
					t.Fatalf("step %d: TLSF handed out occupied word %d (span %v)", step, a, s)
				}
				used[a] = true
			}
			live = append(live, rec{next, s})
			next++
		} else {
			i := rng.Intn(len(live))
			r := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			m.Free(r.id, r.s)
			for a := r.s.Addr; a < r.s.End(); a++ {
				used[a] = false
			}
		}
	}
	// Drain everything and verify the heap coalesces back to one block.
	for _, r := range live {
		m.Free(r.id, r.s)
	}
	if _, err := m.Allocate(next, capacity, nil); err != nil {
		t.Fatalf("heap did not coalesce to a single block: %v", err)
	}
}
