// Package segregated implements a segregated-storage (size-class)
// allocator: requests are rounded up to power-of-two classes, each
// class recycles its own freed blocks, and classes grow by carving
// runs of blocks from a shared arena. Blocks never change class, which
// makes the allocator fast and simple — and exhibits exactly the kind
// of fragmentation under shifting size distributions that the paper's
// adversaries exploit.
package segregated

import (
	"fmt"

	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// DefaultRunBlocks is how many blocks a class carves from the arena at
// a time (capped so runs never exceed DefaultMaxRun words).
const (
	DefaultRunBlocks = 16
	DefaultMaxRun    = 1 << 16
)

// Manager is a non-moving segregated-fit allocator.
type Manager struct {
	arena *heap.FreeSpace
	// free block addresses per class (class = log2 of block size)
	free [][]word.Addr
	objs map[heap.ObjectID]int // object id -> class
}

var _ sim.Manager = (*Manager)(nil)

// New returns an empty segregated manager.
func New() *Manager { return &Manager{} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "segregated" }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	m.arena = heap.NewFreeSpaceWith(cfg.Capacity, cfg.Index)
	classes := word.CeilLog2(cfg.N) + 1
	m.free = make([][]word.Addr, classes)
	m.objs = make(map[heap.ObjectID]int)
}

// Allocate implements sim.Manager.
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, _ sim.Mover) (word.Addr, error) {
	class := word.CeilLog2(size)
	if class >= len(m.free) {
		return 0, fmt.Errorf("segregated: request %d exceeds class table", size)
	}
	if len(m.free[class]) == 0 {
		if err := m.grow(class); err != nil {
			return 0, err
		}
	}
	list := m.free[class]
	addr := list[len(list)-1]
	m.free[class] = list[:len(list)-1]
	m.objs[id] = class
	return addr, nil
}

// grow carves a fresh run of blocks for the class from the arena.
func (m *Manager) grow(class int) error {
	blockSize := word.Pow2(class)
	blocks := word.Size(DefaultRunBlocks)
	if blockSize*blocks > DefaultMaxRun {
		blocks = DefaultMaxRun / blockSize
	}
	if blocks < 1 {
		blocks = 1
	}
	var (
		addr word.Addr
		err  error
	)
	for blocks >= 1 {
		addr, err = m.arena.AllocFirstFit(blockSize * blocks)
		if err == nil {
			break
		}
		blocks /= 2 // shrink the run until it fits
	}
	if err != nil {
		return heap.ErrNoFit
	}
	for b := word.Size(0); b < blocks; b++ {
		m.free[class] = append(m.free[class], addr+b*blockSize)
	}
	return nil
}

// Free implements sim.Manager: the block returns to its class list and
// stays dedicated to the class.
func (m *Manager) Free(id heap.ObjectID, s heap.Span) {
	class, ok := m.objs[id]
	if !ok {
		panic(fmt.Sprintf("segregated: Free of unknown object %d", id))
	}
	delete(m.objs, id)
	m.free[class] = append(m.free[class], s.Addr)
}

// ClassFreeBlocks reports the number of cached free blocks in each
// non-empty class, for tests and stats.
func (m *Manager) ClassFreeBlocks() map[int]int {
	out := make(map[int]int)
	for c, list := range m.free {
		if len(list) > 0 {
			out[c] = len(list)
		}
	}
	return out
}

func init() {
	mm.Register("segregated", func() sim.Manager { return New() })
}
