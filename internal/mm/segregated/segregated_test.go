package segregated

import (
	"testing"

	"compaction/internal/heap"
	"compaction/internal/sim"
	"compaction/internal/word"
)

func reset(capacity word.Size, n word.Size) *Manager {
	m := New()
	m.Reset(sim.Config{M: capacity, N: n, C: -1, Capacity: capacity})
	return m
}

func TestRunCarving(t *testing.T) {
	m := reset(1<<16, 64)
	// First allocation of class 8 carves a 16-block run.
	if _, err := m.Allocate(1, 8, nil); err != nil {
		t.Fatal(err)
	}
	free := m.ClassFreeBlocks()
	if free[3] != 15 {
		t.Fatalf("after first alloc, class-3 free blocks = %d, want 15 (%v)", free[3], free)
	}
}

func TestClassIsolation(t *testing.T) {
	m := reset(1<<16, 64)
	a8, _ := m.Allocate(1, 8, nil)
	a16, _ := m.Allocate(2, 16, nil)
	// Different classes come from different runs.
	if a8/1024 == a16/1024 && word.ChunkIndex(a8, 128) == word.ChunkIndex(a16, 128) {
		t.Logf("classes share a region: a8=%d a16=%d (allowed but unexpected)", a8, a16)
	}
	m.Free(1, heap.Span{Addr: a8, Size: 8})
	// The freed 8-block must NOT satisfy a 16-word request.
	a16b, _ := m.Allocate(3, 16, nil)
	if a16b == a8 {
		t.Fatalf("class isolation violated: 16-word object in freed 8-block")
	}
}

func TestRoundUpToClass(t *testing.T) {
	m := reset(1<<16, 64)
	a, err := m.Allocate(1, 5, nil) // class 3 (8 words)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Allocate(2, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Fatalf("two live objects share block %d", a)
	}
	// Block stride within the run is the class size 8.
	if d := a - b; d != 8 && d != -8 {
		t.Fatalf("blocks not 8 apart: %d %d", a, b)
	}
}

func TestRunShrinksWhenArenaTight(t *testing.T) {
	// Capacity only fits 4 blocks of class 6 (64 words): grow must
	// shrink its run request instead of failing.
	m := reset(256, 64)
	for i := 0; i < 4; i++ {
		if _, err := m.Allocate(heap.ObjectID(i), 64, nil); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := m.Allocate(9, 64, nil); err != heap.ErrNoFit {
		t.Fatalf("expected ErrNoFit, got %v", err)
	}
}

func TestOversizedRequestRejected(t *testing.T) {
	m := reset(1<<12, 64)
	if _, err := m.Allocate(1, 128, nil); err == nil {
		t.Fatal("request beyond class table accepted")
	}
}

func TestFreeUnknownPanics(t *testing.T) {
	m := reset(1<<12, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("free of unknown object did not panic")
		}
	}()
	m.Free(42, heap.Span{Addr: 0, Size: 8})
}
