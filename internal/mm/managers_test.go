package mm_test

import (
	"errors"
	"fmt"
	"testing"

	"compaction/internal/budget"
	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
	"compaction/internal/workload"

	// Register all managers.
	_ "compaction/internal/mm/bitmapff"
	_ "compaction/internal/mm/bpcompact"
	_ "compaction/internal/mm/buddy"
	_ "compaction/internal/mm/fits"
	_ "compaction/internal/mm/halffit"
	_ "compaction/internal/mm/improved"
	_ "compaction/internal/mm/markcompact"
	_ "compaction/internal/mm/rounding"
	_ "compaction/internal/mm/segregated"
	_ "compaction/internal/mm/threshold"
	_ "compaction/internal/mm/tlsf"
)

// nonMoving lists managers that must never spend compaction budget.
var nonMoving = map[string]bool{
	"first-fit": true, "best-fit": true, "next-fit": true,
	"worst-fit": true, "aligned-first-fit": true,
	"buddy": true, "segregated": true, "tlsf": true, "half-fit": true,
	"bitmap-first-fit": true, "rounded-segregated": true,
}

func TestRegistryListsAllManagers(t *testing.T) {
	want := []string{
		"aligned-first-fit", "best-fit", "bitmap-first-fit", "bp-compact",
		"buddy", "first-fit", "half-fit", "improved", "mark-compact", "next-fit",
		"rounded-segregated", "segregated", "threshold", "tlsf",
		"worst-fit",
	}
	got := mm.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestRegistryUnknownManager(t *testing.T) {
	if _, err := mm.New("no-such-manager"); err == nil {
		t.Fatal("expected error for unknown manager")
	}
}

// conformanceConfig is small enough to run every manager quickly but
// large enough to exercise splitting, coalescing and compaction.
func conformanceConfig(c int64, pow2 bool) sim.Config {
	return sim.Config{M: 1 << 12, N: 1 << 6, C: c, Pow2Only: pow2}
}

// TestManagersServeRandomWorkloads runs every registered manager
// against randomized workloads. The engine itself enforces the model
// invariants (no overlap, budget, capacity), so a clean finish is the
// assertion.
func TestManagersServeRandomWorkloads(t *testing.T) {
	for _, name := range mm.Names() {
		for _, c := range []int64{budget.NoCompaction, 8, 64} {
			if nonMoving[name] && c != budget.NoCompaction {
				continue // non-moving managers run once
			}
			name, c := name, c
			t.Run(fmt.Sprintf("%s/c=%d", name, c), func(t *testing.T) {
				mgr, err := mm.New(name)
				if err != nil {
					t.Fatal(err)
				}
				prog := workload.NewRandom(workload.Config{
					Seed:   42,
					Rounds: 60,
					Dist:   workload.Geometric,
				})
				e, err := sim.NewEngine(conformanceConfig(c, true), prog, mgr)
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.Run()
				if err != nil {
					t.Fatalf("run failed: %v", err)
				}
				if res.Allocs == 0 {
					t.Fatal("workload made no allocations")
				}
				if res.HighWater < res.MaxLive {
					t.Fatalf("HS=%d below max live %d: impossible", res.HighWater, res.MaxLive)
				}
				if nonMoving[name] && res.Moves != 0 {
					t.Fatalf("non-moving manager moved %d times", res.Moves)
				}
			})
		}
	}
}

// TestManagersSurviveRampDown runs the classic fragmentation trap.
func TestManagersSurviveRampDown(t *testing.T) {
	for _, name := range mm.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			mgr, err := mm.New(name)
			if err != nil {
				t.Fatal(err)
			}
			c := int64(8)
			if nonMoving[name] {
				c = budget.NoCompaction
			}
			cfg := sim.Config{M: 1 << 10, N: 1 << 4, C: c, Pow2Only: true}
			e, err := sim.NewEngine(cfg, workload.NewRampDown(1), mgr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			// Managers must survive; waste varies by policy but is
			// bounded by the engine capacity. Record it for reference.
			t.Logf("%s: HS=%d waste=%.2f moves=%d", name, res.HighWater, res.WasteFactor(), res.Moves)
		})
	}
}

// TestBPCompactUpperBound checks the (c+1)M guarantee of the
// Bendersky–Petrank manager on adversarial-ish random churn.
func TestBPCompactUpperBound(t *testing.T) {
	for _, c := range []int64{4, 10, 25} {
		c := c
		t.Run(fmt.Sprintf("c=%d", c), func(t *testing.T) {
			mgr, err := mm.New("bp-compact")
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.Config{M: 1 << 12, N: 1 << 6, C: c, Pow2Only: true,
				Capacity: (c + 2) * (1 << 12)}
			prog := workload.NewRandom(workload.Config{Seed: 7, Rounds: 200, ChurnFrac: 0.5})
			e, err := sim.NewEngine(cfg, prog, mgr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			bound := (c + 1) * cfg.M
			if res.HighWater > bound {
				t.Fatalf("HS=%d exceeds (c+1)M=%d", res.HighWater, bound)
			}
		})
	}
}

// TestMoversRespectBudget verifies that the compacting managers stay
// within their c-partial budget under heavy churn (the engine would
// fail the run otherwise, but we also check the arithmetic directly).
func TestMoversRespectBudget(t *testing.T) {
	for _, name := range []string{"bp-compact", "threshold", "improved"} {
		name := name
		t.Run(name, func(t *testing.T) {
			mgr, err := mm.New(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := conformanceConfig(16, true)
			prog := workload.NewRandom(workload.Config{Seed: 99, Rounds: 120, ChurnFrac: 0.6})
			e, err := sim.NewEngine(cfg, prog, mgr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if res.Moved*16 > res.Allocated {
				t.Fatalf("budget violated: moved %d, allocated %d, c=16", res.Moved, res.Allocated)
			}
		})
	}
}

// TestCompactorsBeatNonMovingOnRampDown: with compaction allowed, the
// compacting managers should end with a smaller heap than first-fit on
// the fragmentation trap.
func TestCompactorsBeatNonMovingOnRampDown(t *testing.T) {
	run := func(name string, c int64) sim.Result {
		mgr, err := mm.New(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{M: 1 << 10, N: 1 << 4, C: c, Pow2Only: true}
		e, err := sim.NewEngine(cfg, workload.NewRampDown(1), mgr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s run failed: %v", name, err)
		}
		return res
	}
	ff := run("first-fit", budget.NoCompaction)
	bp := run("bp-compact", 2)
	imp := run("improved", 2)
	if bp.HighWater >= ff.HighWater {
		t.Errorf("bp-compact (HS=%d) did not beat first-fit (HS=%d) on rampdown", bp.HighWater, ff.HighWater)
	}
	if imp.HighWater > ff.HighWater {
		t.Errorf("improved (HS=%d) worse than first-fit (HS=%d) on rampdown", imp.HighWater, ff.HighWater)
	}
}

// scripted helper for the precise placement tests below.
func runScript(t *testing.T, name string, cfg sim.Config, rounds []sim.ScriptRound) (*sim.Script, sim.Result) {
	t.Helper()
	mgr, err := mm.New(name)
	if err != nil {
		t.Fatal(err)
	}
	prog := sim.NewScript("script", rounds)
	e, err := sim.NewEngine(cfg, prog, mgr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return prog, res
}

func TestFirstFitPlacement(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 64, C: budget.NoCompaction}
	prog, _ := runScript(t, "first-fit", cfg, []sim.ScriptRound{
		{Allocs: []word.Size{16, 16, 16}},
		{FreeRefs: []int{0}},
		{Allocs: []word.Size{8}}, // goes into the hole at 0
	})
	if sp, _ := prog.PlacementOf(3); sp.Addr != 0 {
		t.Fatalf("first-fit placed at %d, want 0", sp.Addr)
	}
}

func TestBestFitPlacement(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 64, C: budget.NoCompaction}
	prog, _ := runScript(t, "best-fit", cfg, []sim.ScriptRound{
		{Allocs: []word.Size{32, 8, 16, 8, 64}},
		{FreeRefs: []int{0, 2}}, // holes: 32 at 0, 16 at 40
		{Allocs: []word.Size{16}},
	})
	if sp, _ := prog.PlacementOf(5); sp.Addr != 40 {
		t.Fatalf("best-fit placed at %d, want 40 (the size-16 hole)", sp.Addr)
	}
}

func TestAlignedFirstFitPlacement(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 64, C: budget.NoCompaction, Pow2Only: true}
	prog, _ := runScript(t, "aligned-first-fit", cfg, []sim.ScriptRound{
		{Allocs: []word.Size{4}},  // at 0
		{Allocs: []word.Size{16}}, // must skip to 16 for alignment
	})
	if sp, _ := prog.PlacementOf(1); sp.Addr != 16 {
		t.Fatalf("aligned-first-fit placed at %d, want 16", sp.Addr)
	}
}

func TestBuddyPlacementAndCoalescing(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 64, C: budget.NoCompaction}
	prog, _ := runScript(t, "buddy", cfg, []sim.ScriptRound{
		{Allocs: []word.Size{16, 16}}, // [0,16) and [16,32)
		{FreeRefs: []int{0, 1}},       // both free; must coalesce to 32
		{Allocs: []word.Size{32}},     // fits at 0 only if coalesced
	})
	if sp, _ := prog.PlacementOf(2); sp.Addr != 0 {
		t.Fatalf("buddy placed 32 at %d, want 0 (coalesced)", sp.Addr)
	}
	// Non-pow2 request rounds up: a 5-word object occupies an 8-block.
	prog2, _ := runScript(t, "buddy", cfg, []sim.ScriptRound{
		{Allocs: []word.Size{5, 1}},
	})
	if sp, _ := prog2.PlacementOf(1); sp.Addr != 8 {
		t.Fatalf("object after 5-word buddy block at %d, want 8", sp.Addr)
	}
}

func TestSegregatedRecycling(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 64, C: budget.NoCompaction, Pow2Only: true}
	prog, _ := runScript(t, "segregated", cfg, []sim.ScriptRound{
		{Allocs: []word.Size{8}},
		{FreeRefs: []int{0}},
		{Allocs: []word.Size{8}}, // must reuse the freed block
	})
	sp0, ok0 := prog.PlacementOf(0)
	sp1, ok1 := prog.PlacementOf(1)
	if !ok0 || !ok1 {
		t.Fatal("missing placements")
	}
	if sp0.Addr != sp1.Addr {
		t.Fatalf("segregated did not recycle block: %d then %d", sp0.Addr, sp1.Addr)
	}
}

func TestImprovedCompactsDownward(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 64, C: 1} // generous budget
	prog, res := runScript(t, "improved", cfg, []sim.ScriptRound{
		{Allocs: []word.Size{64, 64, 64}},
		{FreeRefs: []int{0, 1}}, // big hole at the bottom
		{},                      // a round for StartRound to compact
	})
	if sp, _ := prog.PlacementOf(2); sp.Addr != 0 {
		t.Fatalf("improved left top object at %d, want 0 after compaction", sp.Addr)
	}
	if res.Moves == 0 {
		t.Fatal("improved never moved")
	}
}

func TestThresholdEvacuatesSparseChunk(t *testing.T) {
	// Chunk size defaults to 4n = 64. Fill two chunks with 16 objects
	// of 8 words, then free all but one object in the first chunk: its
	// density 8/64 = 12.5% < 25% triggers evacuation.
	cfg := sim.Config{M: 1 << 10, N: 16, C: 1, Pow2Only: true}
	rounds := []sim.ScriptRound{
		{Allocs: []word.Size{8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8}},
		// Free 64 words (>= one chunk, so a scan triggers), leaving
		// object 7 alone in chunk 0 at 12.5% density.
		{FreeRefs: []int{0, 1, 2, 3, 4, 5, 6, 8}},
		{}, // compaction round
	}
	prog, res := runScript(t, "threshold", cfg, rounds)
	if res.Moves == 0 {
		t.Fatal("threshold never evacuated the sparse chunk")
	}
	if sp, _ := prog.PlacementOf(7); sp.Addr < 64 {
		t.Fatalf("survivor still in chunk 0 at %d", sp.Addr)
	}
}

func TestEngineFlagsManagerOutOfCapacity(t *testing.T) {
	// A tiny capacity forces ErrNoFit from the manager; the engine
	// must classify it as a manager-side failure.
	cfg := sim.Config{M: 1 << 10, N: 64, C: budget.NoCompaction, Capacity: 32}
	mgr, err := mm.New("first-fit")
	if err != nil {
		t.Fatal(err)
	}
	prog := sim.NewScript("script", []sim.ScriptRound{{Allocs: []word.Size{32, 32}}})
	e, err := sim.NewEngine(cfg, prog, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); !errors.Is(err, sim.ErrManager) {
		t.Fatalf("want ErrManager, got %v", err)
	}
}

// Property-style check: for every manager, placements reported to the
// program always match the engine's ground truth via the view.
type placementAuditor struct {
	workload.Random
}

func TestManagersHighWaterMonotone(t *testing.T) {
	for _, name := range mm.Names() {
		mgr, err := mm.New(name)
		if err != nil {
			t.Fatal(err)
		}
		c := int64(16)
		if nonMoving[name] {
			c = budget.NoCompaction
		}
		cfg := conformanceConfig(c, true)
		prog := workload.NewRandom(workload.Config{Seed: 5, Rounds: 40})
		e, err := sim.NewEngine(cfg, prog, mgr)
		if err != nil {
			t.Fatal(err)
		}
		var last heap.Span // track monotone HS via hook
		var prev word.Addr
		bad := false
		e.RoundHook = func(r sim.Result) {
			if r.HighWater < prev {
				bad = true
			}
			prev = r.HighWater
		}
		if _, err := e.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = last
		if bad {
			t.Fatalf("%s: high-water mark decreased", name)
		}
	}
}
