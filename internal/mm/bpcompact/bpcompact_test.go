package bpcompact

import (
	"fmt"
	"testing"

	"compaction/internal/sim"
	"compaction/internal/word"
	"compaction/internal/workload"
)

// TestGuaranteeUnderSustainedChurn is the package-level statement of
// the (c+1)M theorem: for several c and workload seeds, the heap never
// exceeds (c+1)·M.
func TestGuaranteeUnderSustainedChurn(t *testing.T) {
	for _, c := range []int64{2, 5, 10} {
		for seed := int64(1); seed <= 3; seed++ {
			c, seed := c, seed
			t.Run(fmt.Sprintf("c=%d,seed=%d", c, seed), func(t *testing.T) {
				cfg := sim.Config{M: 1 << 11, N: 1 << 5, C: c, Pow2Only: true,
					Capacity: (c + 2) << 11}
				prog := workload.NewRandom(workload.Config{
					Seed: seed, Rounds: 250, ChurnFrac: 0.6, TargetLive: 0.95,
				})
				e, err := sim.NewEngine(cfg, prog, New())
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.HighWater > (c+1)*cfg.M {
					t.Fatalf("HS=%d exceeds (c+1)M=%d", res.HighWater, (c+1)*cfg.M)
				}
			})
		}
	}
}

func TestSlideIsCompleteWithFullBudget(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 1 << 4, C: 0, Pow2Only: true}
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{16, 16, 16, 16}},
		{FreeRefs: []int{0, 1, 2}},
		{}, // slide
		{Allocs: []word.Size{16}},
	})
	e, err := sim.NewEngine(cfg, prog, New())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Survivor slid to 0; new object bumped to 16.
	s3, _ := prog.PlacementOf(3)
	s4, _ := prog.PlacementOf(4)
	if s3.Addr != 0 || s4.Addr != 16 {
		t.Fatalf("after slide: survivor %v, new %v", s3, s4)
	}
	if res.HighWater != 64 {
		t.Fatalf("HS = %d, want 64 (initial fill)", res.HighWater)
	}
}

func TestNoCompactionWithoutBudget(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 1 << 4, C: sim.Config{}.C - 1, Pow2Only: true}
	cfg.C = -1
	prog := workload.NewRandom(workload.Config{Seed: 2, Rounds: 30})
	e, err := sim.NewEngine(cfg, prog, New())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Fatalf("moved %d times without budget", res.Moves)
	}
}

func TestFrontierResetAcrossRuns(t *testing.T) {
	m := New()
	cfg := sim.Config{M: 1 << 10, N: 1 << 4, C: 4, Pow2Only: true}
	for i := 0; i < 2; i++ {
		prog := workload.NewRandom(workload.Config{Seed: 1, Rounds: 20})
		e, err := sim.NewEngine(cfg, prog, m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}
