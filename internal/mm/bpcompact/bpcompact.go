// Package bpcompact implements the simple compacting collector A_c of
// Bendersky & Petrank (POPL 2011), the upper-bound construction quoted
// in Section 2.2 of Cohen & Petrank (PLDI 2013). It bump-allocates at
// the frontier and slides all live objects to the bottom of the heap
// whenever the accrued compaction budget covers the live space.
//
// For a c-partial run this guarantees heap size at most (c+1)·M:
// after a full slide the frontier equals the live space (≤ M), and
// between slides the frontier grows by at most the c·M words of
// allocation needed to accrue M words of budget.
package bpcompact

import (
	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// Manager is the (c+1)M bump-and-slide compactor.
type Manager struct {
	mm.Base
	// scanBuf is the reused address-ordered object buffer for scans.
	scanBuf  []heap.Object
	frontier word.Addr
	live     word.Size
}

var (
	_ sim.Manager        = (*Manager)(nil)
	_ sim.RoundCompactor = (*Manager)(nil)
)

// New returns an empty manager.
func New() *Manager { return &Manager{} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "bp-compact" }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	m.Base.Reset(cfg)
	m.frontier = 0
	m.live = 0
}

// Free implements sim.Manager.
func (m *Manager) Free(id heap.ObjectID, s heap.Span) {
	m.live -= s.Size
	m.Base.Free(id, s)
}

// StartRound implements sim.RoundCompactor: slide everything down as
// soon as the budget covers the live words and a hole exists below the
// frontier.
func (m *Manager) StartRound(mv sim.Mover) {
	if m.fragmented() && mv.Remaining() >= m.live {
		m.compact(mv)
	}
}

// fragmented reports whether any hole exists below the frontier.
func (m *Manager) fragmented() bool {
	return m.live < word.Size(m.frontier)
}

// compact slides all objects to the bottom in address order.
func (m *Manager) compact(mv sim.Mover) {
	var front word.Addr
	m.scanBuf = m.AppendObjectsByAddr(m.scanBuf)
	for _, o := range m.scanBuf {
		if o.Span.Addr != front {
			if mv.Remaining() < o.Span.Size {
				break
			}
			removed, err := m.MoveObject(mv, o.ID, front)
			if err != nil {
				break
			}
			if removed {
				// The program freed the object in flight (P_F's rule);
				// its destination is free again, so do not advance.
				m.live -= o.Span.Size
				continue
			}
		}
		front += o.Span.Size
	}
	// Recompute the frontier: the end of the highest live object.
	m.frontier = 0
	m.Objs.Each(func(_ heap.ObjectID, s heap.Span) bool {
		if s.End() > m.frontier {
			m.frontier = s.End()
		}
		return true
	})
}

// Allocate implements sim.Manager by bump allocation at the frontier.
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, mv sim.Mover) (word.Addr, error) {
	if m.frontier+size > m.Cfg.Capacity && m.fragmented() {
		// Out of room at the top: compact now regardless of the usual
		// trigger, with whatever budget is available.
		m.compact(mv)
	}
	s := heap.Span{Addr: m.frontier, Size: size}
	if err := m.FS.Reserve(s); err != nil {
		return 0, err
	}
	m.Record(id, s)
	m.frontier += size
	m.live += size
	return s.Addr, nil
}

func init() {
	mm.Register("bp-compact", func() sim.Manager { return New() })
}
