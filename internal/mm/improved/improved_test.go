package improved

import (
	"testing"

	"compaction/internal/sim"
	"compaction/internal/word"
	"compaction/internal/workload"
)

func TestAlignedPlacement(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 1 << 5, C: -1, Pow2Only: true}
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{4, 32}},
	})
	e, err := sim.NewEngine(cfg, prog, New())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s1, _ := prog.PlacementOf(1)
	if !word.IsAligned(s1.Addr, 32) {
		t.Fatalf("32-word object at unaligned %d", s1.Addr)
	}
}

func TestDownwardCompactionShrinksExtent(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 1 << 5, C: 1, Pow2Only: true}
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{32, 32, 32, 32, 32, 32}},
		{FreeRefs: []int{0, 1, 2, 3}},
		{}, // compaction
	})
	e, err := sim.NewEngine(cfg, prog, New())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The two survivors (at 128, 160) must have moved into [0, 64).
	s4, _ := prog.PlacementOf(4)
	s5, _ := prog.PlacementOf(5)
	if s4.Addr >= 64 || s5.Addr >= 64 {
		t.Fatalf("survivors not compacted down: %v %v", s4, s5)
	}
	if res.Moves != 2 {
		t.Fatalf("moves = %d, want 2", res.Moves)
	}
}

func TestStopsWhenBudgetExhausted(t *testing.T) {
	// c = 64: after 6·32 = 192 allocated words the quota is 3 words —
	// not even one 32-word move. No compaction may happen.
	cfg := sim.Config{M: 1 << 10, N: 1 << 5, C: 64, Pow2Only: true}
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{32, 32, 32, 32, 32, 32}},
		{FreeRefs: []int{0, 1, 2, 3}},
		{},
	})
	e, err := sim.NewEngine(cfg, prog, New())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Fatalf("moved %d times with insufficient budget", res.Moves)
	}
}

func TestBeatsNonMovingOnSawtooth(t *testing.T) {
	runWith := func(mgr sim.Manager, c int64) float64 {
		cfg := sim.Config{M: 1 << 12, N: 1 << 5, C: c, Pow2Only: true}
		e, err := sim.NewEngine(cfg, workload.NewSawtooth(3, 6), mgr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.WasteFactor()
	}
	withCompaction := runWith(New(), 4)
	without := runWith(New(), -1)
	if withCompaction > without {
		t.Fatalf("compaction made things worse: %.3f vs %.3f", withCompaction, without)
	}
}

func TestMoveCapLimitsSweep(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 1 << 5, C: 1, Pow2Only: true}
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{32, 32, 32, 32, 32, 32}},
		{FreeRefs: []int{0, 1, 2, 3}},
		{}, // one compaction round, capped at a single move
	})
	e, err := sim.NewEngine(cfg, prog, NewWithCap(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The cap is per round: one move in the round after the frees and
	// one in the final round — never the uncapped two-at-once sweep.
	if res.Moves != 2 {
		t.Fatalf("moves = %d, want 2 (one per round under the cap)", res.Moves)
	}
}
