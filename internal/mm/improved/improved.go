// Package improved implements a c-partial manager in the spirit of
// Theorem 2 of Cohen & Petrank (PLDI 2013): a Robson-style size-classed
// allocator that spends its limited compaction budget shrinking the
// heap extent.
//
// The exact construction of the paper's upper-bound manager appears
// only in the full version, which is not available; this package is a
// documented reconstruction (see DESIGN.md §5). Its ingredients follow
// the theorem's structure:
//
//   - placement is aligned first-fit, so an object of class 2^i sits at
//     a 2^i-aligned address — the discipline Robson's bound analyses;
//   - whenever compaction budget is available, the manager relocates
//     the highest-addressed objects into the lowest aligned holes,
//     strictly reducing the heap extent (incremental compaction).
//
// We validate the manager empirically (it must respect the c-partial
// budget and should beat the non-moving allocators against the
// adversaries); we do not claim it meets the Theorem 2 formula, which
// is computed separately in internal/bounds.
package improved

import (
	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// Manager is the reconstructed Theorem-2-style partial compactor.
type Manager struct {
	mm.Base
	// scanBuf is the reused address-ordered object buffer for scans.
	scanBuf []heap.Object
	// maxMovesPerRound caps the per-round compaction sweep; 0 = no cap.
	maxMovesPerRound int
}

var (
	_ sim.Manager        = (*Manager)(nil)
	_ sim.RoundCompactor = (*Manager)(nil)
)

// New returns an empty manager.
func New() *Manager { return &Manager{} }

// NewWithCap bounds the per-round compaction sweep to at most cap
// moves, trading defragmentation speed for shorter pauses (the
// incremental-compaction knob real collectors expose).
func NewWithCap(cap int) *Manager { return &Manager{maxMovesPerRound: cap} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "improved" }

// alignFor returns the placement alignment for a request: the largest
// power of two not exceeding the size.
func alignFor(size word.Size) word.Size { return word.RoundDownPow2(size) }

// Allocate implements sim.Manager with aligned first-fit placement.
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, _ sim.Mover) (word.Addr, error) {
	addr, err := m.FS.AllocAlignedFirstFit(size, alignFor(size))
	if err == heap.ErrNoFit {
		addr, err = m.FS.AllocFirstFit(size)
	}
	if err != nil {
		return 0, err
	}
	m.Record(id, heap.Span{Addr: addr, Size: size})
	return addr, nil
}

// StartRound implements sim.RoundCompactor: move top objects downward
// into aligned holes while the budget lasts and progress is made.
func (m *Manager) StartRound(mv sim.Mover) {
	if mv.Remaining() == 0 {
		return
	}
	m.scanBuf = m.AppendObjectsByAddr(m.scanBuf)
	objs := m.scanBuf
	moves := 0
	for i := len(objs) - 1; i >= 0; i-- {
		o := objs[i]
		cur, ok := m.Objs.Get(o.ID)
		if !ok {
			continue
		}
		if mv.Remaining() < cur.Size {
			return
		}
		dst, ok := m.FS.PeekAlignedFirstFit(cur.Size, alignFor(cur.Size))
		if !ok || dst >= cur.Addr {
			// No strictly lower aligned hole for this object; a smaller
			// object further down may still fit somewhere, so keep
			// sweeping.
			continue
		}
		if _, err := m.MoveObject(mv, o.ID, dst); err != nil {
			return
		}
		moves++
		if m.maxMovesPerRound > 0 && moves >= m.maxMovesPerRound {
			return
		}
	}
}

func init() {
	mm.Register("improved", func() sim.Manager { return New() })
}
