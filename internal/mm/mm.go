// Package mm defines shared infrastructure for the memory managers of
// the simulation: a registry of manager factories and a Base type that
// handles the bookkeeping every free-list manager needs (free-space
// index, object table, configuration).
//
// Concrete managers live in subpackages:
//
//	mm/fits        first-fit, best-fit, next-fit, worst-fit, aligned-fit
//	mm/buddy       binary buddy allocator
//	mm/segregated  size-class (slab) allocator
//	mm/tlsf        two-level segregated fit (Masmano et al. 2004)
//	mm/halffit     Half-Fit (Ogasawara 1995)
//	mm/bitmapff    bitmap first-fit with a coarse summary level
//	mm/rounding    power-of-two rounding adapter (Section 2.2)
//	mm/bpcompact   the (c+1)·M compacting manager of Bendersky & Petrank
//	mm/markcompact full sliding mark-compact (LISP-2 order)
//	mm/threshold   density-threshold chunk evacuator
//	mm/improved    Theorem-2-style size-classed partial compactor
//
// internal/heap/sharded additionally registers sharded-* wrappers that
// run any of the above over a partitioned address space (one sub-heap
// per Config.Shards shard) and exports the concurrent Allocator facade.
package mm

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"compaction/internal/heap"
	"compaction/internal/obs"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// Factory constructs a fresh manager instance.
type Factory func() sim.Manager

var (
	regMu    sync.Mutex
	registry = make(map[string]Factory)
)

// Register adds a manager factory under a unique name. It panics on
// duplicates, which would indicate a programming error at init time.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("mm.Register: duplicate manager %q", name))
	}
	registry[name] = f
}

// New constructs the registered manager with the given name.
func New(name string) (sim.Manager, error) {
	regMu.Lock()
	f, ok := registry[name]
	if !ok {
		known := namesLocked()
		regMu.Unlock()
		return nil, fmt.Errorf("mm: unknown manager %q (known: %v)", name, known)
	}
	// Invoke the factory without the lock: wrapper managers construct
	// their inner manager through New as well.
	regMu.Unlock()
	return f(), nil
}

// Names returns the registered manager names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Base carries the bookkeeping shared by the free-list managers: the
// run configuration, a free-space index over the heap, and the table
// of live objects the manager has placed. Managers embed Base and
// implement Allocate. The object table is a paged dense SpanTable (the
// engine hands out sequential IDs), which keeps the record/free hot
// path off the map runtime entirely.
type Base struct {
	Cfg  sim.Config
	FS   *heap.FreeSpace
	Objs heap.SpanTable

	// tracer, when set, receives the manager-side events the engine
	// cannot see: move attempts that were refused before or by the
	// engine (budget exhaustion, occupied destination). Successful
	// moves are reported by the engine itself.
	tracer obs.Tracer
}

// SetTracer implements obs.TracerSetter. The setting survives Reset.
func (b *Base) SetTracer(t obs.Tracer) { b.tracer = t }

// rejectMove reports a refused move attempt. Base does not know the
// engine's round counter, so manager-side events carry Round == -1.
func (b *Base) rejectMove(id heap.ObjectID, from heap.Span, to word.Addr) {
	if b.tracer != nil {
		b.tracer.Emit(obs.Event{
			Kind: obs.EvMoveReject, Round: -1,
			ID: id, From: from.Addr, Addr: to, Size: from.Size,
		})
	}
}

// Reset implements the corresponding part of sim.Manager.
func (b *Base) Reset(cfg sim.Config) {
	b.Cfg = cfg
	b.FS = heap.NewFreeSpaceWith(cfg.Capacity, cfg.Index)
	b.Objs.Reset()
}

// Free implements sim.Manager by returning the object's words to the
// free space.
func (b *Base) Free(id heap.ObjectID, s heap.Span) {
	cur, ok := b.Objs.Get(id)
	if !ok || cur != s {
		panic(fmt.Sprintf("mm: Free(%d, %v) does not match manager record %v", id, s, cur))
	}
	b.Objs.Delete(id)
	if err := b.FS.Release(s); err != nil {
		panic(fmt.Sprintf("mm: releasing %v: %v", s, err))
	}
}

// Record notes a placement the manager has just carved from its free
// space.
func (b *Base) Record(id heap.ObjectID, s heap.Span) {
	b.Objs.Set(id, s)
}

// Drop forgets an object whose words are already accounted as free
// (used after a move when the program freed the object in flight).
func (b *Base) Drop(id heap.ObjectID) {
	b.Objs.Delete(id)
}

// MoveObject relocates one of the manager's own objects using the
// engine mover, keeping the free-space index consistent. The
// destination must be free in the manager's index once the object's
// own words are discounted, so overlapping slides are allowed. If the
// program frees the object in response, the destination is released
// again and removed=true is returned.
func (b *Base) MoveObject(mv sim.Mover, id heap.ObjectID, to word.Addr) (removed bool, err error) {
	from, ok := b.Objs.Get(id)
	if !ok {
		return false, fmt.Errorf("mm: move of unknown object %d", id)
	}
	dst := heap.Span{Addr: to, Size: from.Size}
	// Vacate the source first so a destination that overlaps the
	// object's current location (a slide) is reservable.
	if err := b.FS.Release(from); err != nil {
		panic(fmt.Sprintf("mm: releasing source %v for move: %v", from, err))
	}
	if err := b.FS.Reserve(dst); err != nil {
		if rerr := b.FS.Reserve(from); rerr != nil {
			panic(fmt.Sprintf("mm: rollback reserve of %v failed: %v", from, rerr))
		}
		b.rejectMove(id, from, to)
		return false, fmt.Errorf("mm: move destination not free: %w", err)
	}
	freed, err := mv.Move(id, to)
	if err != nil {
		// The engine refused the move (e.g. budget); roll back.
		if rerr := b.FS.Release(dst); rerr != nil {
			panic(fmt.Sprintf("mm: rollback of %v failed: %v", dst, rerr))
		}
		if rerr := b.FS.Reserve(from); rerr != nil {
			panic(fmt.Sprintf("mm: rollback reserve of %v failed: %v", from, rerr))
		}
		b.rejectMove(id, from, to)
		return false, err
	}
	if freed {
		b.Objs.Delete(id)
		if err := b.FS.Release(dst); err != nil {
			panic(fmt.Sprintf("mm: releasing freed destination %v: %v", dst, err))
		}
		return true, nil
	}
	b.Objs.Set(id, dst)
	return false, nil
}

// LiveWords returns the number of words in objects the manager tracks.
func (b *Base) LiveWords() word.Size {
	return b.FS.Capacity() - b.FS.FreeWords()
}

// ObjectsByAddr returns the manager's live objects sorted by address.
func (b *Base) ObjectsByAddr() []heap.Object {
	return b.AppendObjectsByAddr(nil)
}

// AppendObjectsByAddr appends the manager's live objects in address
// order to buf and returns it, so compactors that scan every round can
// reuse one buffer.
func (b *Base) AppendObjectsByAddr(buf []heap.Object) []heap.Object {
	buf = buf[:0]
	b.Objs.Each(func(id heap.ObjectID, s heap.Span) bool {
		buf = append(buf, heap.Object{ID: id, Span: s})
		return true
	})
	slices.SortFunc(buf, func(x, y heap.Object) int {
		// Placements are disjoint, so start addresses are unique keys.
		if x.Span.Addr < y.Span.Addr {
			return -1
		}
		return 1
	})
	return buf
}
