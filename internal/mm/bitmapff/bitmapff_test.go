package bitmapff

import (
	"math/rand"
	"testing"

	"compaction/internal/heap"
	"compaction/internal/sim"
	"compaction/internal/word"
)

func reset(capacity word.Size) *Manager {
	m := New()
	m.Reset(sim.Config{M: capacity, N: 64, C: -1, Capacity: capacity})
	return m
}

func TestSequentialFill(t *testing.T) {
	m := reset(256)
	for i := 0; i < 4; i++ {
		a, err := m.Allocate(heap.ObjectID(i), 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a != word.Addr(i*64) {
			t.Fatalf("alloc %d at %d", i, a)
		}
	}
	if _, err := m.Allocate(99, 1, nil); err != heap.ErrNoFit {
		t.Fatalf("full heap: %v", err)
	}
	if m.OccupiedWords() != 256 {
		t.Fatalf("occupied = %d", m.OccupiedWords())
	}
}

func TestFirstFitFindsLowestHole(t *testing.T) {
	m := reset(512)
	spans := make(map[heap.ObjectID]heap.Span)
	for i := heap.ObjectID(0); i < 8; i++ {
		a, err := m.Allocate(i, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		spans[i] = heap.Span{Addr: a, Size: 64}
	}
	m.Free(2, spans[2]) // hole at 128
	m.Free(5, spans[5]) // hole at 320
	a, err := m.Allocate(100, 30, nil)
	if err != nil || a != 128 {
		t.Fatalf("first fit chose %d (%v), want 128", a, err)
	}
	// Remaining hole at 158..192 fits 34 words; a 40-word request must
	// go to 320.
	a, err = m.Allocate(101, 40, nil)
	if err != nil || a != 320 {
		t.Fatalf("first fit chose %d (%v), want 320", a, err)
	}
}

func TestRunsAcrossGranules(t *testing.T) {
	m := reset(512)
	// Occupy [0,60): a 100-word request must go at 60, spanning the
	// granule boundary at 64.
	if _, err := m.Allocate(1, 60, nil); err != nil {
		t.Fatal(err)
	}
	a, err := m.Allocate(2, 100, nil)
	if err != nil || a != 60 {
		t.Fatalf("cross-granule alloc at %d (%v), want 60", a, err)
	}
}

func TestUnalignedBoundaryMasks(t *testing.T) {
	m := reset(256)
	a1, _ := m.Allocate(1, 3, nil)
	a2, _ := m.Allocate(2, 5, nil)
	a3, _ := m.Allocate(3, 7, nil)
	if a1 != 0 || a2 != 3 || a3 != 8 {
		t.Fatalf("odd-size packing: %d %d %d", a1, a2, a3)
	}
	m.Free(2, heap.Span{Addr: 3, Size: 5})
	if m.isFree(2) || !m.isFree(3) || !m.isFree(7) || m.isFree(8) {
		t.Fatal("free range boundaries wrong")
	}
	a4, err := m.Allocate(4, 5, nil)
	if err != nil || a4 != 3 {
		t.Fatalf("exact hole reuse at %d (%v)", a4, err)
	}
}

func TestWatermarkRollsBack(t *testing.T) {
	m := reset(1 << 10)
	spans := make(map[heap.ObjectID]heap.Span)
	for i := heap.ObjectID(0); i < 16; i++ {
		a, _ := m.Allocate(i, 64, nil)
		spans[i] = heap.Span{Addr: a, Size: 64}
	}
	// Watermark is at the top now; freeing a low object must roll it
	// back so first-fit finds the low hole again.
	m.Free(0, spans[0])
	a, err := m.Allocate(100, 64, nil)
	if err != nil || a != 0 {
		t.Fatalf("post-rollback alloc at %d (%v), want 0", a, err)
	}
}

func TestAgainstReferenceModel(t *testing.T) {
	const capacity = 640
	m := reset(capacity)
	used := make([]bool, capacity)
	firstFit := func(size int64) (int64, bool) {
		run := int64(0)
		for a := int64(0); a < capacity; a++ {
			if !used[a] {
				run++
				if run == size {
					return a - size + 1, true
				}
			} else {
				run = 0
			}
		}
		return 0, false
	}
	rng := rand.New(rand.NewSource(17))
	type rec struct {
		id heap.ObjectID
		s  heap.Span
	}
	var live []rec
	next := heap.ObjectID(1)
	for step := 0; step < 5000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			size := int64(1 + rng.Intn(48))
			want, wantOK := firstFit(size)
			got, err := m.Allocate(next, size, nil)
			if wantOK != (err == nil) {
				t.Fatalf("step %d: fit disagreement for size %d (model %v, err %v)", step, size, wantOK, err)
			}
			if err == nil {
				if got != want {
					t.Fatalf("step %d: alloc(%d) at %d, model says %d", step, size, got, want)
				}
				s := heap.Span{Addr: got, Size: size}
				for a := s.Addr; a < s.End(); a++ {
					used[a] = true
				}
				live = append(live, rec{next, s})
				next++
			}
		} else {
			i := rng.Intn(len(live))
			r := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			m.Free(r.id, r.s)
			for a := r.s.Addr; a < r.s.End(); a++ {
				used[a] = false
			}
		}
	}
}
