// Package bitmapff implements a bitmap-based first-fit allocator: a
// word-granularity occupancy bitmap with a per-granule summary level,
// the allocation scheme used by mark-sweep collectors that allocate
// directly over their mark bitmaps (e.g. Go's pre-1.5 span allocator,
// Jikes RVM's mark-sweep space). It is a non-moving manager.
//
// The fine bitmap has one bit per heap word. Each 64-word granule
// carries a small summary — the lengths of its free prefix, free
// suffix, and longest free run — so a first-fit scan composes free
// runs across granules in O(1) per granule and descends to individual
// bits only inside the single granule that is known to contain the
// answer. A low-address watermark (rolled back on every free) bounds
// the scan's starting point.
package bitmapff

import (
	"fmt"
	"math/bits"

	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// granMeta summarizes the free runs of one 64-word granule: the free
// prefix length, free suffix length, and the longest free run anywhere
// in the granule (all in [0, 64]).
type granMeta struct{ pre, suf, max uint8 }

func computeMeta(w uint64) granMeta {
	switch w {
	case 0:
		return granMeta{64, 64, 64}
	case ^uint64(0):
		return granMeta{}
	}
	// The longest run of zero bits in w is the longest run of ones in
	// ^w, found by run-doubling; it subsumes the prefix and suffix.
	z := ^w
	var max uint8
	for z != 0 {
		z &= z << 1
		max++
	}
	return granMeta{
		pre: uint8(bits.TrailingZeros64(w)),
		suf: uint8(bits.LeadingZeros64(w)),
		max: max,
	}
}

// Manager is the bitmap first-fit allocator.
type Manager struct {
	capacity word.Size
	// fine[i] bit b = word 64i+b occupied.
	fine []uint64
	// meta[i] summarizes granule i's free runs.
	meta []granMeta
	// watermark: no free word exists below this granule index.
	watermark int
	objs      heap.SpanTable
}

var _ sim.Manager = (*Manager)(nil)

// New returns an empty bitmap manager.
func New() *Manager { return &Manager{} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "bitmap-first-fit" }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	m.capacity = cfg.Capacity
	granules := (cfg.Capacity + 63) / 64
	m.fine = make([]uint64, granules)
	m.meta = make([]granMeta, granules)
	for i := range m.meta {
		m.meta[i] = granMeta{64, 64, 64}
	}
	m.watermark = 0
	m.objs.Reset()
}

// isFree reports whether word a is free.
func (m *Manager) isFree(a word.Addr) bool {
	return m.fine[a>>6]&(1<<uint(a&63)) == 0
}

// setRange marks [s.Addr, s.End()) occupied (v=true) or free.
func (m *Manager) setRange(s heap.Span, occupied bool) {
	for a := s.Addr; a < s.End(); {
		g := a >> 6
		lo := uint(a & 63)
		hi := uint(64)
		if end := (g + 1) << 6; s.End() < end {
			hi = uint(s.End() - g<<6)
		}
		mask := ^uint64(0) << lo
		if hi < 64 {
			mask &= (1 << hi) - 1
		}
		if occupied {
			m.fine[g] |= mask
		} else {
			m.fine[g] &^= mask
		}
		m.meta[g] = computeMeta(m.fine[g])
		a = g<<6 + word.Addr(hi)
	}
}

// Allocate implements sim.Manager: first-fit scan from the watermark.
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, _ sim.Mover) (word.Addr, error) {
	addr, ok := m.scan(size)
	if !ok {
		return 0, heap.ErrNoFit
	}
	s := heap.Span{Addr: addr, Size: size}
	m.setRange(s, true)
	m.objs.Set(id, s)
	m.advanceWatermark()
	return addr, nil
}

// advanceWatermark moves the watermark past fully-occupied granules.
func (m *Manager) advanceWatermark() {
	for m.watermark < len(m.fine) && m.fine[m.watermark] == ^uint64(0) {
		m.watermark++
	}
}

// scan finds the lowest address of a free run of the given length. It
// walks granules, carrying the length of the free run that reaches the
// current granule boundary; summaries decide each granule in O(1), and
// only a granule whose cached max proves it contains a fitting inner
// run is scanned bit by bit.
func (m *Manager) scan(size word.Size) (word.Addr, bool) {
	var run word.Size   // free run ending at the current granule boundary
	var start word.Addr // its start address
	for g := m.watermark; g < len(m.fine); g++ {
		w := m.fine[g]
		if w == ^uint64(0) {
			run = 0
			continue
		}
		base := word.Addr(g) << 6
		if w == 0 {
			if run == 0 {
				start = base
			}
			run += 64
			if run >= size {
				return start, true
			}
			continue
		}
		mt := m.meta[g]
		// A run carried in from below extends by this granule's free
		// prefix; if that does not reach size, the carried run dies here
		// (the prefix is followed by an occupied bit).
		if run > 0 {
			if run+word.Size(mt.pre) >= size {
				return start, true
			}
			run = 0
		}
		// Runs wholly inside this granule: the cached max says in O(1)
		// whether one fits; only then is the granule's bit pattern
		// walked, and success is guaranteed.
		if word.Size(mt.max) >= size {
			bit := 0
			for bit < 64 {
				rem := w >> uint(bit)
				if rem&1 == 0 {
					zeros := bits.TrailingZeros64(rem)
					if rem == 0 {
						zeros = 64 - bit
					}
					if word.Size(zeros) >= size {
						return base + word.Addr(bit), true
					}
					bit += zeros
				} else {
					bit += bits.TrailingZeros64(^rem)
				}
			}
		}
		// The granule's free suffix seeds the carry into the next one.
		if mt.suf > 0 {
			run = word.Size(mt.suf)
			start = base + 64 - word.Addr(mt.suf)
		}
	}
	return 0, false
}

// Free implements sim.Manager.
func (m *Manager) Free(id heap.ObjectID, s heap.Span) {
	cur, ok := m.objs.Get(id)
	if !ok || cur != s {
		panic(fmt.Sprintf("bitmapff: Free(%d, %v) does not match record %v", id, s, cur))
	}
	m.objs.Delete(id)
	m.setRange(s, false)
	if g := int(s.Addr >> 6); g < m.watermark {
		m.watermark = g
	}
}

// OccupiedWords counts set bits, for tests.
func (m *Manager) OccupiedWords() word.Size {
	var n word.Size
	for _, w := range m.fine {
		n += word.Size(bits.OnesCount64(w))
	}
	return n
}

func init() {
	mm.Register("bitmap-first-fit", func() sim.Manager { return New() })
}
