// Package bitmapff implements a bitmap-based first-fit allocator: a
// word-granularity occupancy bitmap with a coarse summary level, the
// allocation scheme used by mark-sweep collectors that allocate
// directly over their mark bitmaps (e.g. Go's pre-1.5 span allocator,
// Jikes RVM's mark-sweep space). It is a non-moving manager.
//
// The fine bitmap has one bit per heap word; the summary has one bit
// per 64-word granule, set when the granule is completely occupied.
// Searches skip fully-occupied granules via the summary and scan
// candidate granules with bit tricks, starting from a low-address
// watermark that is rolled back on every free.
package bitmapff

import (
	"fmt"
	"math/bits"

	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// Manager is the bitmap first-fit allocator.
type Manager struct {
	capacity word.Size
	// fine[i] bit b = word 64i+b occupied.
	fine []uint64
	// full[i] = granule i (words [64i, 64i+64)) completely occupied.
	full []bool
	// watermark: no free word exists below this granule index.
	watermark int
	objs      map[heap.ObjectID]heap.Span
}

var _ sim.Manager = (*Manager)(nil)

// New returns an empty bitmap manager.
func New() *Manager { return &Manager{} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "bitmap-first-fit" }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	m.capacity = cfg.Capacity
	granules := (cfg.Capacity + 63) / 64
	m.fine = make([]uint64, granules)
	m.full = make([]bool, granules)
	m.watermark = 0
	m.objs = make(map[heap.ObjectID]heap.Span)
}

// isFree reports whether word a is free.
func (m *Manager) isFree(a word.Addr) bool {
	return m.fine[a>>6]&(1<<uint(a&63)) == 0
}

// setRange marks [s.Addr, s.End()) occupied (v=true) or free.
func (m *Manager) setRange(s heap.Span, occupied bool) {
	for a := s.Addr; a < s.End(); {
		g := a >> 6
		lo := uint(a & 63)
		hi := uint(64)
		if end := (g + 1) << 6; s.End() < end {
			hi = uint(s.End() - g<<6)
		}
		mask := ^uint64(0) << lo
		if hi < 64 {
			mask &= (1 << hi) - 1
		}
		if occupied {
			m.fine[g] |= mask
		} else {
			m.fine[g] &^= mask
		}
		m.full[g] = m.fine[g] == ^uint64(0)
		a = g<<6 + word.Addr(hi)
	}
}

// Allocate implements sim.Manager: first-fit scan from the watermark.
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, _ sim.Mover) (word.Addr, error) {
	addr, ok := m.scan(size)
	if !ok {
		return 0, heap.ErrNoFit
	}
	s := heap.Span{Addr: addr, Size: size}
	m.setRange(s, true)
	m.objs[id] = s
	m.advanceWatermark()
	return addr, nil
}

// advanceWatermark moves the watermark past fully-occupied granules.
func (m *Manager) advanceWatermark() {
	for m.watermark < len(m.full) && m.full[m.watermark] {
		m.watermark++
	}
}

// scan finds the lowest address of a free run of the given length.
func (m *Manager) scan(size word.Size) (word.Addr, bool) {
	var run word.Size
	var start word.Addr
	for g := m.watermark; g < len(m.fine); g++ {
		w := m.fine[g]
		if w == ^uint64(0) {
			run = 0
			continue
		}
		if w == 0 {
			if run == 0 {
				start = word.Addr(g) << 6
			}
			run += 64
			if run >= size {
				return start, true
			}
			continue
		}
		// Mixed granule: walk its free runs bit by bit, in chunks of
		// consecutive zero bits.
		base := word.Addr(g) << 6
		bit := 0
		for bit < 64 {
			rem := w >> uint(bit)
			if rem&1 == 0 {
				zeros := bits.TrailingZeros64(rem)
				if rem == 0 {
					zeros = 64 - bit
				}
				if run == 0 {
					start = base + word.Addr(bit)
				}
				run += word.Size(zeros)
				if run >= size {
					return start, true
				}
				bit += zeros
			} else {
				ones := bits.TrailingZeros64(^rem)
				run = 0
				bit += ones
			}
		}
	}
	return 0, false
}

// Free implements sim.Manager.
func (m *Manager) Free(id heap.ObjectID, s heap.Span) {
	cur, ok := m.objs[id]
	if !ok || cur != s {
		panic(fmt.Sprintf("bitmapff: Free(%d, %v) does not match record %v", id, s, cur))
	}
	delete(m.objs, id)
	m.setRange(s, false)
	if g := int(s.Addr >> 6); g < m.watermark {
		m.watermark = g
	}
}

// OccupiedWords counts set bits, for tests.
func (m *Manager) OccupiedWords() word.Size {
	var n word.Size
	for _, w := range m.fine {
		n += word.Size(bits.OnesCount64(w))
	}
	return n
}

func init() {
	mm.Register("bitmap-first-fit", func() sim.Manager { return New() })
}
