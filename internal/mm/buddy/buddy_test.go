package buddy

import (
	"math/rand"
	"testing"

	"compaction/internal/heap"
	"compaction/internal/sim"
	"compaction/internal/word"
)

func reset(capacity word.Size) *Manager {
	m := New()
	m.Reset(sim.Config{M: capacity, N: 64, C: -1, Capacity: capacity})
	return m
}

func TestSplitToExactOrder(t *testing.T) {
	m := reset(256)
	a, err := m.Allocate(1, 16, nil)
	if err != nil || a != 0 {
		t.Fatalf("alloc at %d (%v)", a, err)
	}
	// The split must have left buddies of 16, 32, 64, 128 free.
	fb := m.FreeBlocks()
	for _, order := range []int{4, 5, 6, 7} {
		if fb[order] != 1 {
			t.Fatalf("after split, free blocks = %v, want one each at orders 4..7", fb)
		}
	}
}

func TestAlignedPlacement(t *testing.T) {
	m := reset(1 << 10)
	sizes := []word.Size{1, 2, 4, 8, 16, 32, 64}
	for i, s := range sizes {
		a, err := m.Allocate(heap.ObjectID(i), s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !word.IsAligned(a, word.RoundUpPow2(s)) {
			t.Errorf("size %d placed at %d: not size-aligned", s, a)
		}
	}
}

func TestCoalesceCascades(t *testing.T) {
	m := reset(64)
	var spans []heap.Span
	for i := 0; i < 4; i++ {
		a, err := m.Allocate(heap.ObjectID(i), 16, nil)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, heap.Span{Addr: a, Size: 16})
	}
	for i := 0; i < 4; i++ {
		m.Free(heap.ObjectID(i), spans[i])
	}
	fb := m.FreeBlocks()
	if len(fb) != 1 || fb[6] != 1 {
		t.Fatalf("after freeing all, free blocks = %v, want one order-6 block", fb)
	}
}

func TestBuddyOfHigherAddressCoalesces(t *testing.T) {
	m := reset(64)
	a0, _ := m.Allocate(0, 32, nil)
	a1, _ := m.Allocate(1, 32, nil)
	// Free the higher buddy first, then the lower: must still merge.
	m.Free(1, heap.Span{Addr: a1, Size: 32})
	m.Free(0, heap.Span{Addr: a0, Size: 32})
	if fb := m.FreeBlocks(); fb[6] != 1 {
		t.Fatalf("buddies did not coalesce: %v", fb)
	}
}

func TestRoundUpInternalFragmentation(t *testing.T) {
	m := reset(64)
	// A 5-word object consumes an 8-block; 7 more 8-blocks remain.
	if _, err := m.Allocate(1, 5, nil); err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := 2; ; i++ {
		if _, err := m.Allocate(heap.ObjectID(i), 8, nil); err != nil {
			break
		}
		count++
	}
	if count != 7 {
		t.Fatalf("fit %d more 8-blocks, want 7", count)
	}
}

func TestRequestBeyondCapacity(t *testing.T) {
	m := reset(64)
	if _, err := m.Allocate(1, 128, nil); err == nil {
		t.Fatal("oversized request accepted")
	}
}

func TestLazyStackStaleEntries(t *testing.T) {
	// Stress the lazy-deletion free lists: repeated alloc/free cycles
	// that force merges must never hand out overlapping blocks.
	m := reset(512)
	used := make([]bool, 512)
	rng := rand.New(rand.NewSource(23))
	type rec struct {
		id heap.ObjectID
		s  heap.Span
	}
	var live []rec
	next := heap.ObjectID(1)
	for step := 0; step < 8000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			size := word.Size(1 + rng.Intn(32))
			addr, err := m.Allocate(next, size, nil)
			if err != nil {
				continue
			}
			blockSize := word.RoundUpPow2(size)
			for a := addr; a < addr+blockSize; a++ {
				if used[a] {
					t.Fatalf("step %d: overlapping block at %d", step, a)
				}
				used[a] = true
			}
			live = append(live, rec{next, heap.Span{Addr: addr, Size: size}})
			next++
		} else {
			i := rng.Intn(len(live))
			r := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			m.Free(r.id, r.s)
			blockSize := word.RoundUpPow2(r.s.Size)
			for a := r.s.Addr; a < r.s.Addr+blockSize; a++ {
				used[a] = false
			}
		}
	}
}
