// Package buddy implements a classical binary buddy allocator as a
// non-moving baseline manager. Every object is served from a
// power-of-two block aligned to its size; freed blocks coalesce with
// their buddies. Internal fragmentation (rounding requests up to a
// power of two) is the price for aligned placement, mirroring the
// P2(M, n) rounding discussed in Section 2.2 of the paper.
package buddy

import (
	"fmt"

	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

type block struct {
	addr  word.Addr
	order int
}

// Manager is a non-moving binary buddy allocator.
type Manager struct {
	maxOrder int
	// Per-order free blocks. stacks may hold stale entries (blocks that
	// were merged away); sets holds the truth. Popping skips stale
	// entries, keeping the structure deterministic without ordered maps.
	sets   []map[word.Addr]struct{}
	stacks [][]word.Addr
	objs   map[heap.ObjectID]block
}

var _ sim.Manager = (*Manager)(nil)

// New returns an empty buddy manager; Reset prepares it for a run.
func New() *Manager { return &Manager{} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "buddy" }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	capacity := word.RoundDownPow2(cfg.Capacity)
	m.maxOrder = word.Log2(capacity)
	m.sets = make([]map[word.Addr]struct{}, m.maxOrder+1)
	m.stacks = make([][]word.Addr, m.maxOrder+1)
	for i := range m.sets {
		m.sets[i] = make(map[word.Addr]struct{})
	}
	m.objs = make(map[heap.ObjectID]block)
	m.push(block{addr: 0, order: m.maxOrder})
}

func (m *Manager) push(b block) {
	m.sets[b.order][b.addr] = struct{}{}
	m.stacks[b.order] = append(m.stacks[b.order], b.addr)
}

// pop removes and returns a free block of exactly the given order.
func (m *Manager) pop(order int) (word.Addr, bool) {
	st := m.stacks[order]
	for len(st) > 0 {
		a := st[len(st)-1]
		st = st[:len(st)-1]
		if _, live := m.sets[order][a]; live {
			delete(m.sets[order], a)
			m.stacks[order] = st
			return a, true
		}
	}
	m.stacks[order] = st
	return 0, false
}

// Allocate implements sim.Manager.
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, _ sim.Mover) (word.Addr, error) {
	order := word.CeilLog2(size)
	if order > m.maxOrder {
		return 0, fmt.Errorf("buddy: request %d exceeds heap capacity", size)
	}
	// Find the smallest available order >= requested.
	from := -1
	for o := order; o <= m.maxOrder; o++ {
		if len(m.sets[o]) > 0 {
			from = o
			break
		}
	}
	if from < 0 {
		return 0, heap.ErrNoFit
	}
	addr, ok := m.pop(from)
	if !ok {
		panic("buddy: set/stack inconsistency")
	}
	// Split down to the requested order, freeing the upper halves.
	for o := from; o > order; o-- {
		m.push(block{addr: addr + word.Pow2(o-1), order: o - 1})
	}
	m.objs[id] = block{addr: addr, order: order}
	return addr, nil
}

// Free implements sim.Manager, coalescing buddies eagerly.
func (m *Manager) Free(id heap.ObjectID, s heap.Span) {
	b, ok := m.objs[id]
	if !ok || b.addr != s.Addr {
		panic(fmt.Sprintf("buddy: Free(%d, %v) does not match record %+v", id, s, b))
	}
	delete(m.objs, id)
	addr, order := b.addr, b.order
	for order < m.maxOrder {
		buddy := addr ^ word.Pow2(order)
		if _, free := m.sets[order][buddy]; !free {
			break
		}
		delete(m.sets[order], buddy)
		if buddy < addr {
			addr = buddy
		}
		order++
	}
	m.push(block{addr: addr, order: order})
}

// FreeBlocks returns the number of live free blocks per order, for
// inspection in tests and stats.
func (m *Manager) FreeBlocks() map[int]int {
	out := make(map[int]int)
	for o, set := range m.sets {
		if len(set) > 0 {
			out[o] = len(set)
		}
	}
	return out
}

func init() {
	mm.Register("buddy", func() sim.Manager { return New() })
}
