package fits

import (
	"testing"

	"compaction/internal/heap"
	"compaction/internal/sim"
	"compaction/internal/word"
)

func reset(p Policy, capacity word.Size) *Manager {
	m := New(p)
	m.Reset(sim.Config{M: capacity, N: 64, C: -1, Capacity: capacity})
	return m
}

func TestPolicyNames(t *testing.T) {
	names := map[Policy]string{
		FirstFit:        "first-fit",
		BestFit:         "best-fit",
		NextFit:         "next-fit",
		WorstFit:        "worst-fit",
		AlignedFirstFit: "aligned-first-fit",
		Policy(99):      "unknown-fit",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func prepareHoles(t *testing.T, m *Manager) {
	t.Helper()
	// Occupy everything in 10 objects of 50, then free #1 and #7:
	// holes at [50,100) and [350,400).
	spans := make([]heap.Span, 10)
	for i := range spans {
		a, err := m.Allocate(heap.ObjectID(i), 50, nil)
		if err != nil {
			t.Fatal(err)
		}
		spans[i] = heap.Span{Addr: a, Size: 50}
	}
	m.Free(1, spans[1])
	m.Free(7, spans[7])
}

func TestNextFitCursorAdvances(t *testing.T) {
	m := reset(NextFit, 500)
	prepareHoles(t, m)
	// Cursor is at 500 after the fills; next-fit wraps to the lowest
	// hole first.
	a1, err := m.Allocate(100, 20, nil)
	if err != nil || a1 != 50 {
		t.Fatalf("next-fit #1 at %d (%v), want 50", a1, err)
	}
	// Cursor now 70: the rest of hole 1 is next.
	a2, err := m.Allocate(101, 20, nil)
	if err != nil || a2 != 70 {
		t.Fatalf("next-fit #2 at %d (%v), want 70", a2, err)
	}
	// Cursor 90: only 10 words left there, so a 20-word request moves
	// on to the hole at 350.
	a3, err := m.Allocate(102, 20, nil)
	if err != nil || a3 != 350 {
		t.Fatalf("next-fit #3 at %d (%v), want 350", a3, err)
	}
}

func TestWorstFitPicksLargest(t *testing.T) {
	m := reset(WorstFit, 500)
	prepareHoles(t, m)
	// Enlarge the second hole to 100 by freeing #8 too.
	m.Free(8, heap.Span{Addr: 400, Size: 50})
	a, err := m.Allocate(100, 10, nil)
	if err != nil || a != 350 {
		t.Fatalf("worst-fit at %d (%v), want 350 (the 100-word hole)", a, err)
	}
}

func TestAlignedFallsBackWhenNoAlignedHole(t *testing.T) {
	m := reset(AlignedFirstFit, 96)
	// Occupy [0,40); remaining free is [40,96): a 32-word object has
	// an aligned slot at 64. Then free nothing and ask for another 32:
	// only [40,64) + [96..] — no aligned slot, falls back to unaligned.
	if _, err := m.Allocate(1, 40, nil); err != nil {
		t.Fatal(err)
	}
	a, err := m.Allocate(2, 32, nil)
	if err != nil || a != 64 {
		t.Fatalf("aligned alloc at %d (%v), want 64", a, err)
	}
	a, err = m.Allocate(3, 24, nil)
	if err != nil || a != 40 {
		t.Fatalf("fallback alloc at %d (%v), want 40", a, err)
	}
}

func TestManagersNeverMove(t *testing.T) {
	for _, p := range []Policy{FirstFit, BestFit, NextFit, WorstFit, AlignedFirstFit} {
		m := reset(p, 1024)
		// The Mover is nil; if any policy tried to move it would panic.
		for i := 0; i < 50; i++ {
			if _, err := m.Allocate(heap.ObjectID(i), 8, nil); err != nil {
				t.Fatalf("%v: %v", p, err)
			}
		}
	}
}

func TestFreeReturnsSpace(t *testing.T) {
	m := reset(FirstFit, 64)
	a, _ := m.Allocate(1, 64, nil)
	if _, err := m.Allocate(2, 1, nil); err != heap.ErrNoFit {
		t.Fatalf("expected full heap, got %v", err)
	}
	m.Free(1, heap.Span{Addr: a, Size: 64})
	if _, err := m.Allocate(3, 64, nil); err != nil {
		t.Fatalf("space not returned: %v", err)
	}
}
