// Package fits implements the classical non-moving free-list
// allocation policies: first-fit, best-fit, next-fit, worst-fit, and
// an aligned first-fit that places each object at an address aligned
// to its size class (the placement discipline Robson's analysis and
// the paper's chunk arguments are phrased against).
//
// These managers never compact, so they are the subjects of Robson's
// classical bounds and serve as the non-moving baselines for the
// adversary experiments.
package fits

import (
	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// Policy selects the placement rule of a Manager.
type Policy int

// The supported placement policies.
const (
	FirstFit Policy = iota
	BestFit
	NextFit
	WorstFit
	AlignedFirstFit
)

func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case NextFit:
		return "next-fit"
	case WorstFit:
		return "worst-fit"
	case AlignedFirstFit:
		return "aligned-first-fit"
	default:
		return "unknown-fit"
	}
}

// Manager is a non-moving free-list manager with a fixed policy.
type Manager struct {
	mm.Base
	policy Policy
	cursor word.Addr // next-fit roving pointer
}

var _ sim.Manager = (*Manager)(nil)

// New returns a manager with the given placement policy.
func New(policy Policy) *Manager {
	return &Manager{policy: policy}
}

// Name implements sim.Manager.
func (m *Manager) Name() string { return m.policy.String() }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	m.Base.Reset(cfg)
	m.cursor = 0
}

// Allocate implements sim.Manager.
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, _ sim.Mover) (word.Addr, error) {
	var (
		addr word.Addr
		err  error
	)
	switch m.policy {
	case FirstFit:
		addr, err = m.FS.AllocFirstFit(size)
	case BestFit:
		addr, err = m.FS.AllocBestFit(size)
	case NextFit:
		addr, err = m.FS.AllocNextFit(size, m.cursor)
		if err == nil {
			m.cursor = addr + size
		}
	case WorstFit:
		addr, err = m.FS.AllocWorstFit(size)
	case AlignedFirstFit:
		addr, err = m.FS.AllocAlignedFirstFit(size, word.RoundDownPow2(size))
		if err == heap.ErrNoFit {
			// Fall back to unaligned placement rather than fail.
			addr, err = m.FS.AllocFirstFit(size)
		}
	}
	if err != nil {
		return 0, err
	}
	m.Record(id, heap.Span{Addr: addr, Size: size})
	return addr, nil
}

func init() {
	mm.Register("first-fit", func() sim.Manager { return New(FirstFit) })
	mm.Register("best-fit", func() sim.Manager { return New(BestFit) })
	mm.Register("next-fit", func() sim.Manager { return New(NextFit) })
	mm.Register("worst-fit", func() sim.Manager { return New(WorstFit) })
	mm.Register("aligned-first-fit", func() sim.Manager { return New(AlignedFirstFit) })
}
