// Package threshold implements a density-threshold partial compactor
// in the style of region-evacuating collectors (Garbage-First,
// Metronome, the Compressor): the heap is viewed as fixed-size chunks,
// and chunks whose live density falls below a threshold are evacuated
// — objects are moved into holes elsewhere — whenever the compaction
// budget permits. Allocation is best-fit.
//
// This is the natural "practical" c-partial manager the paper's lower
// bound speaks to: it spends its 1/c budget where the paper says a
// manager must (sparse chunks), and the adversary P_F is designed to
// make exactly this strategy unprofitable by keeping every chunk's
// density above 2^-ℓ > 1/c.
package threshold

import (
	"sort"

	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// Options tune the compactor.
type Options struct {
	// ChunkSize is the evacuation granule. Zero selects 4×n (four times
	// the largest object), so any object intersects at most two chunks.
	ChunkSize word.Size
	// MaxDensity is the highest live density at which a chunk is still
	// considered worth evacuating. Zero selects 0.25.
	MaxDensity float64
}

// Manager is the density-threshold evacuating compactor.
type Manager struct {
	mm.Base
	// scanBuf is the reused address-ordered object buffer for scans.
	scanBuf   []heap.Object
	opts      Options
	chunkSize word.Size
	// freedSinceScan accumulates freed words to pace evacuation scans.
	freedSinceScan word.Size
}

var (
	_ sim.Manager        = (*Manager)(nil)
	_ sim.RoundCompactor = (*Manager)(nil)
)

// New returns a manager with the given options.
func New(opts Options) *Manager {
	if opts.MaxDensity == 0 {
		opts.MaxDensity = 0.25
	}
	return &Manager{opts: opts}
}

// Name implements sim.Manager.
func (m *Manager) Name() string { return "threshold" }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	m.Base.Reset(cfg)
	m.chunkSize = m.opts.ChunkSize
	if m.chunkSize == 0 {
		m.chunkSize = word.RoundUpPow2(cfg.N) * 4
	}
	m.freedSinceScan = 0
}

// Free implements sim.Manager.
func (m *Manager) Free(id heap.ObjectID, s heap.Span) {
	m.freedSinceScan += s.Size
	m.Base.Free(id, s)
}

// Allocate implements sim.Manager (best-fit placement).
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, _ sim.Mover) (word.Addr, error) {
	addr, err := m.FS.AllocBestFit(size)
	if err != nil {
		return 0, err
	}
	m.Record(id, heap.Span{Addr: addr, Size: size})
	return addr, nil
}

// StartRound implements sim.RoundCompactor: scan for sparse chunks
// once enough freeing has happened, and evacuate the sparsest ones
// while the budget lasts.
func (m *Manager) StartRound(mv sim.Mover) {
	if m.freedSinceScan < m.chunkSize || mv.Remaining() == 0 {
		return
	}
	m.freedSinceScan = 0

	type chunkInfo struct {
		index int64
		live  word.Size
		objs  []heap.Object
	}
	chunks := make(map[int64]*chunkInfo)
	m.scanBuf = m.AppendObjectsByAddr(m.scanBuf)
	for _, o := range m.scanBuf {
		first := word.ChunkIndex(o.Span.Addr, m.chunkSize)
		last := word.ChunkIndex(o.Span.End()-1, m.chunkSize)
		for ci := first; ci <= last; ci++ {
			info := chunks[ci]
			if info == nil {
				info = &chunkInfo{index: ci}
				chunks[ci] = info
			}
			// Words of o inside chunk ci.
			lo, hi := o.Span.Addr, o.Span.End()
			if cs := ci * m.chunkSize; cs > lo {
				lo = cs
			}
			if ce := (ci + 1) * m.chunkSize; ce < hi {
				hi = ce
			}
			info.live += hi - lo
			info.objs = append(info.objs, o)
		}
	}

	var sparse []*chunkInfo
	limit := word.Size(float64(m.chunkSize) * m.opts.MaxDensity)
	for _, info := range chunks {
		if info.live > 0 && info.live <= limit {
			sparse = append(sparse, info)
		}
	}
	// Sparsest first: cheapest evacuations buy the most reusable space.
	sort.Slice(sparse, func(i, j int) bool {
		if sparse[i].live != sparse[j].live {
			return sparse[i].live < sparse[j].live
		}
		return sparse[i].index < sparse[j].index
	})

	evacuated := make(map[heap.ObjectID]bool)
	for _, info := range sparse {
		for _, o := range info.objs {
			if evacuated[o.ID] {
				continue
			}
			cur, ok := m.Objs.Get(o.ID)
			if !ok {
				continue // moved-and-freed earlier this scan
			}
			if mv.Remaining() < cur.Size {
				return
			}
			dst, ok := m.findDestination(cur.Size, info.index)
			if !ok {
				continue
			}
			if _, err := m.MoveObject(mv, o.ID, dst); err != nil {
				return // budget or engine refusal: stop compacting
			}
			evacuated[o.ID] = true
		}
	}
}

// findDestination returns a best-fit placement outside the chunk being
// evacuated.
func (m *Manager) findDestination(size word.Size, avoidChunk int64) (word.Addr, bool) {
	g, ok := m.FS.PeekBestFit(size)
	if !ok {
		return 0, false
	}
	if word.ChunkIndex(g.Addr, m.chunkSize) == avoidChunk {
		// The best hole is inside the chunk we are clearing; placing
		// there would be self-defeating. Take the first fit elsewhere.
		var found word.Addr
		ok = false
		m.FS.Gaps(func(s heap.Span) bool {
			if s.Size >= size && word.ChunkIndex(s.Addr, m.chunkSize) != avoidChunk {
				found, ok = s.Addr, true
				return false
			}
			return true
		})
		return found, ok
	}
	return g.Addr, true
}

func init() {
	mm.Register("threshold", func() sim.Manager { return New(Options{}) })
}
