package threshold

import (
	"testing"

	"compaction/internal/sim"
	"compaction/internal/word"
	"compaction/internal/workload"
)

func TestOptionsDefaults(t *testing.T) {
	m := New(Options{})
	m.Reset(sim.Config{M: 1 << 10, N: 16, C: 4, Capacity: 1 << 14})
	if m.chunkSize != 64 { // 4×n
		t.Fatalf("default chunk size = %d, want 64", m.chunkSize)
	}
	if m.opts.MaxDensity != 0.25 {
		t.Fatalf("default density = %v", m.opts.MaxDensity)
	}
}

func TestCustomChunkSize(t *testing.T) {
	m := New(Options{ChunkSize: 128, MaxDensity: 0.5})
	m.Reset(sim.Config{M: 1 << 10, N: 16, C: 4, Capacity: 1 << 14})
	if m.chunkSize != 128 || m.opts.MaxDensity != 0.5 {
		t.Fatalf("options not applied: %d %v", m.chunkSize, m.opts.MaxDensity)
	}
}

func TestDenseChunksNotEvacuated(t *testing.T) {
	// Fill one chunk at 50% density (above the 25% threshold): no
	// evacuation even with ample budget.
	cfg := sim.Config{M: 1 << 10, N: 16, C: 1, Pow2Only: true}
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8}},
		{FreeRefs: []int{0, 2, 4, 6, 8, 10, 12, 14}}, // every other: 50% density
		{},
	})
	e, err := sim.NewEngine(cfg, prog, New(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Fatalf("dense chunks evacuated: %d moves", res.Moves)
	}
}

func TestEvacuationStopsAtBudget(t *testing.T) {
	// c = 128: quota after 128 allocated words is 1 word — a single
	// 8-word survivor cannot be moved.
	cfg := sim.Config{M: 1 << 10, N: 16, C: 128, Pow2Only: true}
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8}},
		{FreeRefs: []int{0, 1, 2, 3, 4, 5, 6, 8}},
		{},
	})
	e, err := sim.NewEngine(cfg, prog, New(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Fatalf("evacuated beyond budget: %d moves", res.Moves)
	}
}

func TestScanPacing(t *testing.T) {
	// Scans only run after a chunk's worth of frees; a tiny free burst
	// must not trigger evacuation even of a sparse chunk.
	cfg := sim.Config{M: 1 << 10, N: 16, C: 1, Pow2Only: true}
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{8, 8}},
		{FreeRefs: []int{0}}, // 8 words freed < chunk size 64
		{},
	})
	e, err := sim.NewEngine(cfg, prog, New(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Fatalf("scan pacing ignored: %d moves", res.Moves)
	}
}

func TestServesGenerationalWorkload(t *testing.T) {
	cfg := sim.Config{M: 1 << 12, N: 1 << 5, C: 16, Pow2Only: true}
	e, err := sim.NewEngine(cfg, workload.NewGenerational(7, 60), New(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocs == 0 {
		t.Fatal("no allocations")
	}
	// Generational traffic is friendly: waste should stay modest.
	if res.WasteFactor() > 3 {
		t.Fatalf("excessive waste %.3f on generational workload", res.WasteFactor())
	}
}
