// Package all registers the complete manager portfolio — every
// internal/mm backend plus the sharded-heap wrappers — as a side
// effect of being imported. Binaries and test packages that resolve
// managers by registry name (compactsim, compactd, the service's
// end-to-end suites) blank-import this one package instead of
// maintaining their own copy of the backend list, so a newly
// registered manager becomes reachable everywhere at once.
package all

import (
	_ "compaction/internal/heap/sharded"
	_ "compaction/internal/mm/bitmapff"
	_ "compaction/internal/mm/bpcompact"
	_ "compaction/internal/mm/buddy"
	_ "compaction/internal/mm/fits"
	_ "compaction/internal/mm/halffit"
	_ "compaction/internal/mm/improved"
	_ "compaction/internal/mm/markcompact"
	_ "compaction/internal/mm/rounding"
	_ "compaction/internal/mm/segregated"
	_ "compaction/internal/mm/threshold"
	_ "compaction/internal/mm/tlsf"
)
