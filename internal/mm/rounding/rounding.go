// Package rounding implements the size-rounding adapter of Section 2.2
// of the paper: any manager for power-of-two sizes can serve programs
// with arbitrary sizes by rounding each request up to the next power
// of two. Rounding at most doubles every object, so a manager with a
// heap bound of B(M) in the P2 world yields a bound of B(2M) for
// arbitrary programs — the transformation behind Robson's
// "2M(½·log n + 1)" curve in Figure 3.
//
// The wrapper keeps the inner manager in a consistent rounded world:
// it rounds sizes on allocation and presents the rounded spans back on
// free, so the inner bookkeeping never observes a non-power-of-two
// size.
package rounding

import (
	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"

	// The registered rounded manager wraps segregated; link it in.
	_ "compaction/internal/mm/segregated"
)

// Manager wraps an inner manager with power-of-two rounding.
type Manager struct {
	inner sim.Manager
	// rounded remembers the rounded size per live object so Free can
	// reconstruct the span the inner manager saw.
	rounded map[heap.ObjectID]word.Size
}

var _ sim.Manager = (*Manager)(nil)

// Wrap returns a rounding adapter around inner.
func Wrap(inner sim.Manager) *Manager {
	return &Manager{inner: inner}
}

// Name implements sim.Manager.
func (m *Manager) Name() string { return "rounded-" + m.inner.Name() }

// Reset implements sim.Manager.
func (m *Manager) Reset(cfg sim.Config) {
	m.rounded = make(map[heap.ObjectID]word.Size)
	// The inner manager may receive sizes up to RoundUpPow2(n).
	inner := cfg
	inner.N = word.RoundUpPow2(cfg.N)
	m.inner.Reset(inner)
}

// Allocate implements sim.Manager.
func (m *Manager) Allocate(id heap.ObjectID, size word.Size, mv sim.Mover) (word.Addr, error) {
	r := word.RoundUpPow2(size)
	addr, err := m.inner.Allocate(id, r, mv)
	if err != nil {
		return 0, err
	}
	m.rounded[id] = r
	return addr, nil
}

// Free implements sim.Manager, presenting the rounded span inward.
func (m *Manager) Free(id heap.ObjectID, s heap.Span) {
	r, ok := m.rounded[id]
	if !ok {
		r = word.RoundUpPow2(s.Size)
	}
	delete(m.rounded, id)
	m.inner.Free(id, heap.Span{Addr: s.Addr, Size: r})
}

// StartRound forwards to the inner manager when it compacts.
//
// Note: compaction through the adapter is disabled — the engine's
// mover works in true sizes while the inner manager thinks in rounded
// sizes, and reconciling the budget accounting across that boundary
// belongs to the inner manager itself. The registered rounded managers
// are therefore non-moving ones.
func (m *Manager) StartRound(sim.Mover) {}

func init() {
	// Buddy already rounds internally; wrapping segregated demonstrates
	// the adapter on a manager that does not.
	mm.Register("rounded-segregated", func() sim.Manager {
		return Wrap(mustInner("segregated"))
	})
}

func mustInner(name string) sim.Manager {
	inner, err := mm.New(name)
	if err != nil {
		panic(err)
	}
	return inner
}
