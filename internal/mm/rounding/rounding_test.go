package rounding

import (
	"testing"

	"compaction/internal/heap"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
	"compaction/internal/workload"

	_ "compaction/internal/mm/fits"
)

func TestRoundsSizesUp(t *testing.T) {
	inner, err := mm.New("segregated")
	if err != nil {
		t.Fatal(err)
	}
	m := Wrap(inner)
	cfg := sim.Config{M: 1 << 10, N: 100, C: -1}
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{5, 3}}, // rounded to 8, 4
	})
	e, err := sim.NewEngine(cfg, prog, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The 5-word object occupies an 8-block: the 3-word object must
	// not be placed inside [addr, addr+8).
	s0, _ := prog.PlacementOf(0)
	s1, _ := prog.PlacementOf(1)
	if s1.Addr >= s0.Addr && s1.Addr < s0.Addr+8 {
		t.Fatalf("rounding leak: %v placed inside rounded block of %v", s1, s0)
	}
}

func TestFreeReconstructsRoundedSpan(t *testing.T) {
	inner, err := mm.New("segregated")
	if err != nil {
		t.Fatal(err)
	}
	m := Wrap(inner)
	cfg := sim.Config{M: 1 << 10, N: 100, C: -1}
	prog := sim.NewScript("s", []sim.ScriptRound{
		{Allocs: []word.Size{5}},
		{FreeRefs: []int{0}},
		{Allocs: []word.Size{6}}, // also rounds to 8: must reuse the block
	})
	e, err := sim.NewEngine(cfg, prog, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s0, _ := prog.PlacementOf(0)
	s1, _ := prog.PlacementOf(1)
	if s0.Addr != s1.Addr {
		t.Fatalf("freed rounded block not recycled: %v then %v", s0, s1)
	}
}

func TestArbitrarySizesWorkload(t *testing.T) {
	mgr, err := mm.New("rounded-segregated")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{M: 1 << 12, N: 100, C: -1} // arbitrary sizes
	prog := workload.NewRandom(workload.Config{Seed: 9, Rounds: 60, Dist: workload.Uniform})
	e, err := sim.NewEngine(cfg, prog, mgr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocs == 0 {
		t.Fatal("no allocations")
	}
}

// TestAtMostDoubling: the paper's Section 2.2 argument — rounding
// costs at most 2× space. On a workload that alternates sizes just
// above powers of two, the rounded manager's heap stays within ~2× of
// what the same manager uses on the pre-rounded sizes.
func TestAtMostDoubling(t *testing.T) {
	run := func(sizes []word.Size) sim.Result {
		mgr, err := mm.New("rounded-segregated")
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{M: 1 << 12, N: 64, C: -1}
		prog := sim.NewScript("s", []sim.ScriptRound{{Allocs: sizes}})
		e, err := sim.NewEngine(cfg, prog, mgr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	worst := make([]word.Size, 60)
	exact := make([]word.Size, 60)
	for i := range worst {
		worst[i] = 33 // rounds to 64
		exact[i] = 64
	}
	rw, re := run(worst), run(exact)
	if rw.HighWater > re.HighWater {
		t.Fatalf("rounded 33s used more heap (%d) than exact 64s (%d)", rw.HighWater, re.HighWater)
	}
	// Live words 60·33 = 1980; rounding doubles them to ≤ 3840, and
	// segregated storage adds at most one partially-used block run
	// (1024 words) of slack on top.
	if rw.HighWater > 2*60*33+1024 {
		t.Fatalf("rounding exceeded the 2x argument plus run slack: HS=%d", rw.HighWater)
	}
}

func TestName(t *testing.T) {
	inner, err := mm.New("segregated")
	if err != nil {
		t.Fatal(err)
	}
	if got := Wrap(inner).Name(); got != "rounded-segregated" {
		t.Fatalf("name = %q", got)
	}
}

func TestFreeUnknownObjectFallsBack(t *testing.T) {
	// Free of an object the wrapper never saw must not panic in the
	// wrapper itself (the inner manager is the one that validates).
	inner, err := mm.New("segregated")
	if err != nil {
		t.Fatal(err)
	}
	m := Wrap(inner)
	m.Reset(sim.Config{M: 64, N: 16, C: -1, Capacity: 1024})
	defer func() { recover() }() // inner manager may panic; that's fine
	m.Free(99, heap.Span{Addr: 0, Size: 5})
}
