package core

import (
	"fmt"
	"sort"

	"compaction/internal/heap"
	"compaction/internal/word"
)

// portion says how much of an object a chunk's association set holds:
// the whole object, or exactly half of it (Section 4's half-objects:
// an object lying on the border of two chunks may have half of its
// size associated with each, "ignoring the actual way the object is
// split between the chunks").
type portion int

const (
	half portion = iota
	full
)

// object is P_F's record of one allocation. Live objects always sit at
// their allocation-time span (P_F frees every object the manager
// moves, so nothing live ever changes address).
type object struct {
	id   heap.ObjectID
	span heap.Span
	live bool
	// ghost marks a stage-I object that was compacted and immediately
	// freed but is still counted by the program at its original address
	// (Definition 4.1).
	ghost bool
}

func (o *object) size() word.Size { return o.span.Size }

// chunkTable maintains the paper's association of objects with aligned
// chunks during the second stage: the sets O_D, the set E of middle
// chunks, and the step-change merging. Chunk k at step i spans
// [k·2^i, (k+1)·2^i).
type chunkTable struct {
	step   int // current step i; chunk size is 2^i
	ell    int // density exponent ℓ; the target density is 2^-ℓ
	chunks map[int64]map[*object]portion
	inE    map[int64]bool
	// where tracks which chunks hold an association for each object
	// (one chunk for full, two for halves).
	where map[*object][]int64

	// Diagnostics for the Claim 4.16 accounting: accumulated prior
	// potential of chunks overwritten by placeNew, split by whether it
	// came from dead entries, E membership, or live entries.
	reusedDeadU, reusedEU word.Size
}

func newChunkTable(step, ell int) *chunkTable {
	return &chunkTable{
		step:   step,
		ell:    ell,
		chunks: make(map[int64]map[*object]portion),
		inE:    make(map[int64]bool),
		where:  make(map[*object][]int64),
	}
}

// chunkSize returns the current chunk size 2^step.
func (t *chunkTable) chunkSize() word.Size { return word.Pow2(t.step) }

// contribution returns the words an entry contributes to Σ_{o∈O_D}|o|.
func contribution(o *object, p portion) word.Size {
	if p == half {
		return o.size() / 2
	}
	return o.size()
}

// sum returns Σ_{o∈O_D}|o| for chunk d, counting dead (compacted-away)
// entries too: association is only removed when P_F de-allocates the
// object or a new object is placed on the chunk.
func (t *chunkTable) sum(d int64) word.Size {
	var s word.Size
	for o, p := range t.chunks[d] {
		s += contribution(o, p)
	}
	return s
}

// associateFull records a whole-object association (line 9 of
// Algorithm 1 and merged halves).
func (t *chunkTable) associateFull(o *object, d int64) {
	t.addEntry(o, d, full)
}

func (t *chunkTable) addEntry(o *object, d int64, p portion) {
	set := t.chunks[d]
	if set == nil {
		set = make(map[*object]portion)
		t.chunks[d] = set
	}
	if prev, ok := set[o]; ok {
		if prev == half && p == half {
			// Two halves of the same object in one chunk merge into a
			// full association; the existing where entry stays as the
			// single record for the merged full entry.
			set[o] = full
			return
		}
		panic(fmt.Sprintf("core: duplicate association of object %d with chunk %d", o.id, d))
	}
	set[o] = p
	t.where[o] = append(t.where[o], d)
	delete(t.inE, d) // an associated chunk is never a middle chunk
}

// removeEntry drops the association of o with chunk d.
func (t *chunkTable) removeEntry(o *object, d int64) {
	set := t.chunks[d]
	if _, ok := set[o]; !ok {
		panic(fmt.Sprintf("core: object %d not associated with chunk %d", o.id, d))
	}
	delete(set, o)
	if len(set) == 0 {
		delete(t.chunks, d)
	}
	t.removeWhereOnce(o, d)
}

func (t *chunkTable) removeWhereOnce(o *object, d int64) {
	ws := t.where[o]
	for i, w := range ws {
		if w == d {
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(t.where, o)
	} else {
		t.where[o] = ws
	}
}

// otherChunk returns the chunk holding the other half of o, given one
// of its chunks.
func (t *chunkTable) otherChunk(o *object, d int64) (int64, bool) {
	for _, w := range t.where[o] {
		if w != d {
			return w, true
		}
	}
	return 0, false
}

// doubleStep advances to step+1: each pair of adjacent chunks becomes
// one chunk (O_D = O_D1 ∪ O_D2, line 12), halves of the same object
// that meet merge into full entries, and E is cleared.
func (t *chunkTable) doubleStep() {
	old := t.chunks
	t.step++
	t.chunks = make(map[int64]map[*object]portion, len(old))
	t.inE = make(map[int64]bool)
	t.where = make(map[*object][]int64)
	for d, set := range old {
		nd := d >> 1
		for o, p := range set {
			if p == full {
				t.addEntry(o, nd, full)
			} else {
				t.addEntry(o, nd, half) // addEntry merges meeting halves
			}
		}
	}
}

// placeNew implements the association updates of line 14: the newly
// allocated object o fully covers chunks d1, d2, d3; the first half of
// o is associated with d1, the second half with d3, and d2 becomes a
// middle chunk in E. Any previous associations of those chunks are
// discarded — their objects must all be dead (the chunks had to be
// physically empty for the placement), which is asserted.
func (t *chunkTable) placeNew(o *object, d1, d2, d3 int64) {
	cs := t.chunkSize()
	for _, d := range []int64{d1, d2, d3} {
		if t.inE[d] {
			t.reusedEU += cs
		} else if s := t.sum(d); s > 0 {
			v := s << uint(t.ell)
			if v > cs {
				v = cs
			}
			t.reusedDeadU += v
		}
		set := t.chunks[d]
		for prev := range set {
			if prev.live {
				panic(fmt.Sprintf("core: live object %d still associated with overwritten chunk %d", prev.id, d))
			}
			t.removeEntry(prev, d)
		}
		delete(t.inE, d)
	}
	t.addEntry(o, d1, half)
	t.addEntry(o, d3, half)
	t.inE[d2] = true
}

// coveredChunks returns the indices of the chunks fully covered by
// span s at the current step, in address order.
func (t *chunkTable) coveredChunks(s heap.Span) []int64 {
	cs := t.chunkSize()
	first := word.AlignUp(s.Addr, cs) / cs
	var out []int64
	for k := first; (k+1)*cs <= s.End(); k++ {
		out = append(out, k)
	}
	return out
}

// sortedChunkIndices returns the indices of non-empty chunks in order.
func (t *chunkTable) sortedChunkIndices() []int64 {
	idx := make([]int64, 0, len(t.chunks))
	for d := range t.chunks {
		idx = append(idx, d)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx
}

// trim implements line 13 for every chunk: free as many objects from
// O_D as possible while Σ_{o∈O_D}|o| stays at least 2^(step−ℓ). When a
// half is freed, the object's association transfers to the chunk
// holding the other half, and that chunk is re-evaluated. Chunks whose
// sum is already at or below the threshold are left alone (freeing
// from them would let the potential function drop, breaking Claim
// 4.16). Physically freed objects are reported through freeCb.
func (t *chunkTable) trim(freeCb func(*object)) {
	threshold := word.Pow2(t.step - t.ell)
	work := t.sortedChunkIndices()
	queued := make(map[int64]bool, len(work))
	for _, d := range work {
		queued[d] = true
	}
	for len(work) > 0 {
		d := work[0]
		work = work[1:]
		queued[d] = false
		requeue := t.trimChunk(d, threshold, freeCb, func(next int64) {
			if !queued[next] {
				queued[next] = true
				work = append(work, next)
			}
		})
		if requeue && !queued[d] {
			queued[d] = true
			work = append(work, d)
		}
	}
}

// trimChunk processes one chunk; enqueue is called for chunks that
// received a transferred half and need re-evaluation.
func (t *chunkTable) trimChunk(d int64, threshold word.Size, freeCb func(*object), enqueue func(int64)) bool {
	set := t.chunks[d]
	if len(set) == 0 {
		return false
	}
	// Deterministic order: largest contribution first, ties by id.
	type ent struct {
		o *object
		p portion
	}
	entries := make([]ent, 0, len(set))
	sum := word.Size(0)
	for o, p := range set {
		entries = append(entries, ent{o, p})
		sum += contribution(o, p)
	}
	sort.Slice(entries, func(i, j int) bool {
		ci, cj := contribution(entries[i].o, entries[i].p), contribution(entries[j].o, entries[j].p)
		if ci != cj {
			return ci > cj
		}
		return entries[i].o.id < entries[j].o.id
	})
	for _, e := range entries {
		if !e.o.live {
			continue // dead entries hold density but cannot be freed
		}
		c := contribution(e.o, e.p)
		if sum-c < threshold {
			// Freeing would drop the chunk below the density floor
			// 2^-ℓ; line 13 keeps it (this is what makes evacuation
			// unprofitable for the manager and keeps u(t) from ever
			// decreasing, Claim 4.16).
			continue
		}
		sum -= c
		if e.p == full {
			t.removeEntry(e.o, d)
			e.o.live = false
			freeCb(e.o)
			continue
		}
		// Freeing a half: transfer the object to the chunk holding the
		// other half and re-evaluate that chunk.
		other, ok := t.otherChunk(e.o, d)
		if !ok {
			panic(fmt.Sprintf("core: half object %d has no other chunk", e.o.id))
		}
		t.removeEntry(e.o, d)
		t.chunks[other][e.o] = full
		enqueue(other)
	}
	return false
}

// potential computes the paper's potential function u(t) restricted to
// the current partition: Σ_D u_D(t) − n/4, where u_D = 2^i for middle
// chunks in E and min(2^ℓ·Σ_{o∈O_D}|o|, 2^i) otherwise (Definitions
// 4.3 and 4.4). It lower-bounds the heap size the manager has used.
func (t *chunkTable) potential(n word.Size) word.Size {
	cs := t.chunkSize()
	var u word.Size
	for d := range t.chunks {
		v := t.sum(d) << uint(t.ell)
		if v > cs {
			v = cs
		}
		u += v
	}
	u += word.Size(len(t.inE)) * cs
	return u - n/4
}
