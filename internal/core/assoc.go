package core

import (
	"fmt"
	"slices"

	"compaction/internal/heap"
	"compaction/internal/word"
)

// trimEnt pairs an association entry with its portion for the
// deterministic trim ordering.
type trimEnt struct {
	o *object
	p portion
}

// portion says how much of an object a chunk's association set holds:
// the whole object, or exactly half of it (Section 4's half-objects:
// an object lying on the border of two chunks may have half of its
// size associated with each, "ignoring the actual way the object is
// split between the chunks").
type portion int

const (
	half portion = iota
	full
)

// object is P_F's record of one allocation. Live objects always sit at
// their allocation-time span (P_F frees every object the manager
// moves, so nothing live ever changes address).
type object struct {
	id   heap.ObjectID
	span heap.Span
	live bool
	// ghost marks a stage-I object that was compacted and immediately
	// freed but is still counted by the program at its original address
	// (Definition 4.1).
	ghost bool
	// wchunks[:nw] lists the chunks holding this object's associations
	// and wp the portion held by each (one full entry, or two halves).
	// Keeping the entries inline on the object replaces per-chunk maps
	// that dominated stage-II allocation churn.
	nw      uint8
	wchunks [2]int64
	wp      [2]portion
}

// addWhere records chunk d holding portion p of the object.
func (o *object) addWhere(d int64, p portion) {
	if o.nw >= 2 {
		panic(fmt.Sprintf("core: object %d associated with more than two chunks", o.id))
	}
	o.wchunks[o.nw] = d
	o.wp[o.nw] = p
	o.nw++
}

// whereIndex returns the position of chunk d in the list, or -1.
func (o *object) whereIndex(d int64) int {
	for i := uint8(0); i < o.nw; i++ {
		if o.wchunks[i] == d {
			return int(i)
		}
	}
	return -1
}

// delWhere removes chunk d from the list.
func (o *object) delWhere(d int64) {
	if i := o.whereIndex(d); i >= 0 {
		o.nw--
		o.wchunks[i] = o.wchunks[o.nw]
		o.wp[i] = o.wp[o.nw]
	}
}

func (o *object) size() word.Size { return o.span.Size }

// chunkTable maintains the paper's association of objects with aligned
// chunks during the second stage: the sets O_D, the set E of middle
// chunks, and the step-change merging. Chunk k at step i spans
// [k·2^i, (k+1)·2^i).
type chunkTable struct {
	step int // current step i; chunk size is 2^i
	ell  int // density exponent ℓ; the target density is 2^-ℓ
	// chunks lists the objects of each non-empty set O_D; the portion
	// each entry holds lives on the object itself (wchunks/wp). Entry
	// order within a chunk is arbitrary and never load-bearing — every
	// consumer either sums or sorts by a total order.
	chunks map[int64][]*object
	inE    map[int64]bool

	// Reused scratch buffers for the per-round scans.
	coverBuf []int64
	idxBuf   []int64
	trimBuf  []trimEnt
	dsBuf    []dsEnt
	// entPool recycles emptied entry slices: every doubleStep retires
	// half the chunks and every placeNew clears three, so without
	// reuse the entry storage dominates stage-II allocation.
	entPool [][]*object

	// Diagnostics for the Claim 4.16 accounting: accumulated prior
	// potential of chunks overwritten by placeNew, split by whether it
	// came from dead entries, E membership, or live entries.
	reusedDeadU, reusedEU word.Size
}

// dsEnt carries one association across a doubleStep rebuild.
type dsEnt struct {
	o  *object
	nd int64
	p  portion
}

func newChunkTable(step, ell int) *chunkTable {
	return &chunkTable{
		step:   step,
		ell:    ell,
		chunks: make(map[int64][]*object),
		inE:    make(map[int64]bool),
	}
}

// chunkSize returns the current chunk size 2^step.
func (t *chunkTable) chunkSize() word.Size { return word.Pow2(t.step) }

// contribution returns the words an entry contributes to Σ_{o∈O_D}|o|.
func contribution(o *object, p portion) word.Size {
	if p == half {
		return o.size() / 2
	}
	return o.size()
}

// sum returns Σ_{o∈O_D}|o| for chunk d, counting dead (compacted-away)
// entries too: association is only removed when P_F de-allocates the
// object or a new object is placed on the chunk.
func (t *chunkTable) sum(d int64) word.Size {
	var s word.Size
	for _, o := range t.chunks[d] {
		s += contribution(o, o.wp[o.whereIndex(d)])
	}
	return s
}

// entry returns o's portion in chunk d, if associated.
func (t *chunkTable) entry(d int64, o *object) (portion, bool) {
	if i := o.whereIndex(d); i >= 0 {
		return o.wp[i], true
	}
	return 0, false
}

// associateFull records a whole-object association (line 9 of
// Algorithm 1 and merged halves).
func (t *chunkTable) associateFull(o *object, d int64) {
	t.addEntry(o, d, full)
}

// getEnts returns an empty entry slice, reusing a pooled one.
func (t *chunkTable) getEnts() []*object {
	if n := len(t.entPool); n > 0 {
		s := t.entPool[n-1]
		t.entPool = t.entPool[:n-1]
		return s
	}
	return make([]*object, 0, 2)
}

func (t *chunkTable) putEnts(s []*object) {
	for i := range s {
		s[i] = nil // do not retain dead objects through the pool
	}
	t.entPool = append(t.entPool, s[:0])
}

func (t *chunkTable) addEntry(o *object, d int64, p portion) {
	if i := o.whereIndex(d); i >= 0 {
		if o.wp[i] == half && p == half {
			// Two halves of the same object in one chunk merge into a
			// full association, a single entry.
			o.wp[i] = full
			return
		}
		panic(fmt.Sprintf("core: duplicate association of object %d with chunk %d", o.id, d))
	}
	ents := t.chunks[d]
	if ents == nil {
		ents = t.getEnts()
	}
	t.chunks[d] = append(ents, o)
	o.addWhere(d, p)
	delete(t.inE, d) // an associated chunk is never a middle chunk
}

// removeEntry drops the association of o with chunk d.
func (t *chunkTable) removeEntry(o *object, d int64) {
	ents := t.chunks[d]
	i := slices.Index(ents, o)
	if i < 0 {
		panic(fmt.Sprintf("core: object %d not associated with chunk %d", o.id, d))
	}
	last := len(ents) - 1
	ents[i] = ents[last]
	ents[last] = nil
	ents = ents[:last]
	if len(ents) == 0 {
		delete(t.chunks, d)
		t.putEnts(ents)
	} else {
		t.chunks[d] = ents
	}
	o.delWhere(d)
}

// otherChunk returns the chunk holding the other half of o, given one
// of its chunks.
func (t *chunkTable) otherChunk(o *object, d int64) (int64, bool) {
	for i := uint8(0); i < o.nw; i++ {
		if o.wchunks[i] != d {
			return o.wchunks[i], true
		}
	}
	return 0, false
}

// doubleStep advances to step+1: each pair of adjacent chunks becomes
// one chunk (O_D = O_D1 ∪ O_D2, line 12), halves of the same object
// that meet merge into full entries, and E is cleared.
func (t *chunkTable) doubleStep() {
	old := t.chunks
	t.step++
	t.chunks = make(map[int64][]*object, len(old))
	t.inE = make(map[int64]bool)
	// Collect every entry with its portion first: the on-object lists
	// are both the source (old portions) and the destination (new
	// chunks), and an object's entries can straddle two old chunks, so
	// they can only be reset once all its entries are gathered.
	buf := t.dsBuf[:0]
	for d, ents := range old {
		nd := d >> 1
		for _, o := range ents {
			buf = append(buf, dsEnt{o: o, nd: nd, p: o.wp[o.whereIndex(d)]})
		}
		t.putEnts(ents)
	}
	for _, e := range buf {
		e.o.nw = 0
	}
	for _, e := range buf {
		t.addEntry(e.o, e.nd, e.p) // addEntry merges meeting halves
	}
	t.dsBuf = buf
}

// placeNew implements the association updates of line 14: the newly
// allocated object o fully covers chunks d1, d2, d3; the first half of
// o is associated with d1, the second half with d3, and d2 becomes a
// middle chunk in E. Any previous associations of those chunks are
// discarded — their objects must all be dead (the chunks had to be
// physically empty for the placement), which is asserted.
func (t *chunkTable) placeNew(o *object, d1, d2, d3 int64) {
	cs := t.chunkSize()
	for _, d := range [3]int64{d1, d2, d3} {
		if t.inE[d] {
			t.reusedEU += cs
		} else if s := t.sum(d); s > 0 {
			v := s << uint(t.ell)
			if v > cs {
				v = cs
			}
			t.reusedDeadU += v
		}
		for {
			ents := t.chunks[d]
			if len(ents) == 0 {
				break
			}
			prev := ents[len(ents)-1]
			if prev.live {
				panic(fmt.Sprintf("core: live object %d still associated with overwritten chunk %d", prev.id, d))
			}
			t.removeEntry(prev, d)
		}
		delete(t.inE, d)
	}
	t.addEntry(o, d1, half)
	t.addEntry(o, d3, half)
	t.inE[d2] = true
}

// coveredChunks returns the indices of the chunks fully covered by
// span s at the current step, in address order. The returned slice
// aliases a scratch buffer valid until the next call.
func (t *chunkTable) coveredChunks(s heap.Span) []int64 {
	cs := t.chunkSize()
	first := word.AlignUp(s.Addr, cs) / cs
	out := t.coverBuf[:0]
	for k := first; (k+1)*cs <= s.End(); k++ {
		out = append(out, k)
	}
	t.coverBuf = out
	return out
}

// sortedChunkIndices returns the indices of non-empty chunks in order.
// The returned slice aliases a scratch buffer valid until the next
// call.
func (t *chunkTable) sortedChunkIndices() []int64 {
	idx := t.idxBuf[:0]
	for d := range t.chunks {
		idx = append(idx, d)
	}
	slices.Sort(idx)
	t.idxBuf = idx
	return idx
}

// trim implements line 13 for every chunk: free as many objects from
// O_D as possible while Σ_{o∈O_D}|o| stays at least 2^(step−ℓ). When a
// half is freed, the object's association transfers to the chunk
// holding the other half, and that chunk is re-evaluated. Chunks whose
// sum is already at or below the threshold are left alone (freeing
// from them would let the potential function drop, breaking Claim
// 4.16). Physically freed objects are reported through freeCb.
func (t *chunkTable) trim(freeCb func(*object)) {
	threshold := word.Pow2(t.step - t.ell)
	work := t.sortedChunkIndices()
	queued := make(map[int64]bool, len(work))
	for _, d := range work {
		queued[d] = true
	}
	for len(work) > 0 {
		d := work[0]
		work = work[1:]
		queued[d] = false
		requeue := t.trimChunk(d, threshold, freeCb, func(next int64) {
			if !queued[next] {
				queued[next] = true
				work = append(work, next)
			}
		})
		if requeue && !queued[d] {
			queued[d] = true
			work = append(work, d)
		}
	}
}

// trimChunk processes one chunk; enqueue is called for chunks that
// received a transferred half and need re-evaluation.
func (t *chunkTable) trimChunk(d int64, threshold word.Size, freeCb func(*object), enqueue func(int64)) bool {
	ents := t.chunks[d]
	if len(ents) == 0 {
		return false
	}
	// Deterministic order: largest contribution first, ties by id.
	entries := t.trimBuf[:0]
	sum := word.Size(0)
	for _, o := range ents {
		p := o.wp[o.whereIndex(d)]
		entries = append(entries, trimEnt{o, p})
		sum += contribution(o, p)
	}
	slices.SortFunc(entries, func(a, b trimEnt) int {
		ca, cb := contribution(a.o, a.p), contribution(b.o, b.p)
		switch {
		case ca != cb:
			if ca > cb {
				return -1
			}
			return 1
		case a.o.id < b.o.id:
			return -1
		default:
			return 1
		}
	})
	t.trimBuf = entries
	for _, e := range entries {
		if !e.o.live {
			continue // dead entries hold density but cannot be freed
		}
		c := contribution(e.o, e.p)
		if sum-c < threshold {
			// Freeing would drop the chunk below the density floor
			// 2^-ℓ; line 13 keeps it (this is what makes evacuation
			// unprofitable for the manager and keeps u(t) from ever
			// decreasing, Claim 4.16).
			continue
		}
		sum -= c
		if e.p == full {
			t.removeEntry(e.o, d)
			e.o.live = false
			freeCb(e.o)
			continue
		}
		// Freeing a half: transfer the object to the chunk holding the
		// other half and re-evaluate that chunk.
		other, ok := t.otherChunk(e.o, d)
		if !ok {
			panic(fmt.Sprintf("core: half object %d has no other chunk", e.o.id))
		}
		t.removeEntry(e.o, d)
		e.o.wp[e.o.whereIndex(other)] = full
		enqueue(other)
	}
	return false
}

// potential computes the paper's potential function u(t) restricted to
// the current partition: Σ_D u_D(t) − n/4, where u_D = 2^i for middle
// chunks in E and min(2^ℓ·Σ_{o∈O_D}|o|, 2^i) otherwise (Definitions
// 4.3 and 4.4). It lower-bounds the heap size the manager has used.
func (t *chunkTable) potential(n word.Size) word.Size {
	cs := t.chunkSize()
	var u word.Size
	for d, ents := range t.chunks {
		var s word.Size
		for _, o := range ents {
			s += contribution(o, o.wp[o.whereIndex(d)])
		}
		v := s << uint(t.ell)
		if v > cs {
			v = cs
		}
		u += v
	}
	u += word.Size(len(t.inE)) * cs
	return u - n/4
}
