package core

import (
	"testing"

	"compaction/internal/mm"
	"compaction/internal/sim"
)

// TestAuditHoldsAcrossManagers runs P_F against a mix of managers and
// audits the association invariants after every round.
func TestAuditHoldsAcrossManagers(t *testing.T) {
	cfg := validationConfig()
	for _, name := range []string{"first-fit", "bp-compact", "threshold", "improved", "mark-compact"} {
		name := name
		t.Run(name, func(t *testing.T) {
			mgr, err := mm.New(name)
			if err != nil {
				t.Fatal(err)
			}
			pf := NewPF(Options{})
			e, err := sim.NewEngine(cfg, pf, mgr)
			if err != nil {
				t.Fatal(err)
			}
			e.RoundHook = func(r sim.Result) {
				if err := pf.Audit(); err != nil {
					t.Fatalf("round %d: %v", r.Rounds, err)
				}
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if err := pf.Audit(); err != nil {
				t.Fatalf("final: %v", err)
			}
		})
	}
}

// TestAuditCatchesCorruption sanity-checks the auditor itself by
// corrupting the table.
func TestAuditCatchesCorruption(t *testing.T) {
	mgr, err := mm.New("first-fit")
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPF(Options{})
	e, err := sim.NewEngine(validationConfig(), pf, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Corrupt: put a chunk into E that has entries.
	for d := range pf.table.chunks {
		pf.table.inE[d] = true
		break
	}
	if err := pf.Audit(); err == nil {
		t.Fatal("auditor missed E corruption")
	}
}
