package core

import (
	"testing"

	"compaction/internal/heap"
)

func obj(id heap.ObjectID, addr, size int64, live bool) *object {
	return &object{id: id, span: heap.Span{Addr: addr, Size: size}, live: live}
}

// TestFigure4Scenario reproduces the paper's Figure 4: chunks of size
// 8 with density threshold 1/4 (ℓ=2, so each chunk must keep 2
// associated words). O1 (2 words, chunk C7), O2 (4 words, halves on C7
// and C8), O3 (2 words, C9). The program can free O1 — the density of
// C7 stays 1/4 via O2's half — but nothing else.
func TestFigure4Scenario(t *testing.T) {
	tab := newChunkTable(3, 2) // chunk size 8, threshold 2^(3-2) = 2
	o1 := obj(1, 56, 2, true)  // inside C7 = [56,64)
	o2 := obj(2, 60, 4, true)  // straddles C7/C8
	o3 := obj(3, 72, 2, true)  // inside C9
	tab.associateFull(o1, 7)
	tab.addEntry(o2, 7, half)
	tab.addEntry(o2, 8, half)
	tab.associateFull(o3, 9)

	var freed []heap.ObjectID
	tab.trim(func(o *object) { freed = append(freed, o.id) })

	if len(freed) != 1 || freed[0] != 1 {
		t.Fatalf("freed %v, want exactly [1] (O1)", freed)
	}
	if o2.live != true || o3.live != true {
		t.Fatalf("O2/O3 must stay live: %v %v", o2.live, o3.live)
	}
	if tab.sum(7) != 2 || tab.sum(8) != 2 || tab.sum(9) != 2 {
		t.Fatalf("post-trim sums: C7=%d C8=%d C9=%d, want 2 each",
			tab.sum(7), tab.sum(8), tab.sum(9))
	}
}

func TestHalfTransferMergesToFull(t *testing.T) {
	// A chunk rich enough to give up its half: the half transfers to
	// the other chunk, merging into a full association there, and the
	// receiving chunk is re-evaluated.
	tab := newChunkTable(3, 2) // threshold 2
	filler := obj(1, 0, 4, true)
	o := obj(2, 6, 4, true) // halves on C0 [0,8) and C1 [8,16)
	big := obj(3, 10, 4, true)
	tab.associateFull(filler, 0)
	tab.addEntry(o, 0, half)
	tab.addEntry(o, 1, half)
	tab.associateFull(big, 1)

	var freed []heap.ObjectID
	tab.trim(func(ob *object) { freed = append(freed, ob.id) })

	// C0: sum 6, threshold 2. Largest first: filler(4) freed (sum 2),
	// half o cannot go (0 < 2). C1: sum 2+4=6: free big (4) leaves 2...
	// Order of chunk processing is C0 then C1; exact outcomes:
	// C0: free filler. C1: entries big(4), half-o(2): free big → sum 2.
	want := map[heap.ObjectID]bool{1: true, 3: true}
	for _, id := range freed {
		if !want[id] {
			t.Fatalf("unexpected free of %d (freed=%v)", id, freed)
		}
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("missing frees: %v (freed=%v)", want, freed)
	}
	if !o.live {
		t.Fatal("straddling object freed though both chunks need it")
	}
}

func TestHalfFreeTransfersAndCascades(t *testing.T) {
	// C0 holds a big object + a half; freeing the half transfers the
	// object fully to C1, where it can then be freed outright because
	// C1 is also rich.
	tab := newChunkTable(4, 2) // chunk size 16, threshold 4
	a := obj(1, 0, 16, true)   // fills C0
	o := obj(2, 14, 4, true)   // halves on C0, C1
	b := obj(3, 16, 16, true)  // fills C1 (the engine would reject this
	// overlap, but the table is pure bookkeeping and the scenario
	// isolates the cascade logic)
	tab.associateFull(a, 0)
	tab.addEntry(o, 0, half)
	tab.addEntry(o, 1, half)
	tab.associateFull(b, 1)

	var freed []heap.ObjectID
	tab.trim(func(ob *object) { freed = append(freed, ob.id) })

	// C0: sum 18 ≥ 4. Free a (16) → sum 2? No: 18−16=2 < 4, so a stays.
	// Free half o: 18−2=16 ≥ 4 → transfer o to C1 as full.
	// Re-evaluate C1: sum 16+4=20: free b? 20−16=4 ≥ 4 yes. Then o:
	// 4−4=0 < 4, stays.
	if o.live {
		// o ended fully associated with C1; it may be freed there if
		// budget allows: 20−16(b freed)−4 = 0 < 4, so o must be live.
		_ = o
	}
	if a.live == false {
		t.Fatal("a should not be freeable (C0 would drop below threshold)")
	}
	if b.live == true {
		t.Fatal("b should have been freed from the re-evaluated C1")
	}
	if got, ok := tab.entry(1, o); !ok || got != full {
		t.Fatalf("o should be fully associated with C1, got %v ok=%v", got, ok)
	}
	if tab.sum(0) != 16 || tab.sum(1) != 4 {
		t.Fatalf("sums after cascade: C0=%d C1=%d", tab.sum(0), tab.sum(1))
	}
}

func TestDoubleStepMergesChunksAndHalves(t *testing.T) {
	tab := newChunkTable(3, 2)
	o := obj(1, 6, 4, true) // halves on C0, C1 (size-8 chunks)
	solo := obj(2, 17, 2, true)
	tab.addEntry(o, 0, half)
	tab.addEntry(o, 1, half)
	tab.associateFull(solo, 2)
	tab.inE[5] = true

	tab.doubleStep()

	if tab.step != 4 || tab.chunkSize() != 16 {
		t.Fatalf("step=%d size=%d", tab.step, tab.chunkSize())
	}
	// C0+C1 merge into new chunk 0; the two halves of o must merge to
	// a full entry.
	if p, ok := tab.entry(0, o); !ok || p != full {
		t.Fatalf("merged halves: got %v ok=%v, want full", p, ok)
	}
	if tab.sum(0) != 4 {
		t.Fatalf("sum(0) = %d, want 4", tab.sum(0))
	}
	// solo moves from chunk 2 to chunk 1.
	if p, ok := tab.entry(1, solo); !ok || p != full {
		t.Fatalf("solo not in merged chunk 1: %v %v", p, ok)
	}
	// E is cleared at step change.
	if len(tab.inE) != 0 {
		t.Fatalf("E not cleared: %v", tab.inE)
	}
}

func TestPlaceNewResetsChunksAndE(t *testing.T) {
	tab := newChunkTable(3, 2)
	dead := obj(1, 8, 2, false) // compacted-away remnant on C1
	tab.associateFull(dead, 1)
	o := obj(2, 6, 32, true) // covers C1, C2, C3 fully
	tab.placeNew(o, 1, 2, 3)

	if p, ok := tab.entry(1, o); !ok || p != half {
		t.Fatalf("D1 association: %v %v", p, ok)
	}
	if p, ok := tab.entry(3, o); !ok || p != half {
		t.Fatalf("D3 association: %v %v", p, ok)
	}
	if len(tab.chunks[2]) != 0 {
		t.Fatalf("D2 should be empty, has %d entries", len(tab.chunks[2]))
	}
	if !tab.inE[2] {
		t.Fatal("D2 not in E")
	}
	if _, ok := tab.entry(1, dead); ok {
		t.Fatal("dead remnant survived placeNew")
	}
	// sums: each half of the 32-word object contributes 16, capped by
	// the chunk function at chunk size 8 — the cap lives in potential(),
	// sum() reports the raw association.
	if tab.sum(1) != 16 || tab.sum(3) != 16 {
		t.Fatalf("sums: %d %d", tab.sum(1), tab.sum(3))
	}
}

func TestPlaceNewPanicsOnLiveEntry(t *testing.T) {
	tab := newChunkTable(3, 2)
	alive := obj(1, 8, 2, true)
	tab.associateFull(alive, 1)
	o := obj(2, 8, 32, true)
	defer func() {
		if recover() == nil {
			t.Fatal("placeNew over a live association did not panic")
		}
	}()
	tab.placeNew(o, 1, 2, 3)
}

func TestTrimBelowThresholdFreesNothing(t *testing.T) {
	// Chunk with 3 unit objects at threshold 4: the sum (3) is already
	// below the density floor, so line 13 frees nothing — freeing would
	// decrease the potential function (Claim 4.16) and hand the manager
	// reusable space without any compaction cost.
	tab := newChunkTable(4, 2) // threshold 4
	objs := []*object{obj(1, 0, 1, true), obj(2, 4, 1, true), obj(3, 8, 1, true)}
	for _, o := range objs {
		tab.associateFull(o, 0)
	}
	var freed []heap.ObjectID
	tab.trim(func(o *object) { freed = append(freed, o.id) })
	if len(freed) != 0 {
		t.Fatalf("freed %v, want nothing", freed)
	}
	if len(tab.chunks[0]) != 3 {
		t.Fatalf("chunk kept %d entries, want 3", len(tab.chunks[0]))
	}
}

func TestPotentialComputation(t *testing.T) {
	tab := newChunkTable(3, 2) // chunk size 8, multiplier 2^2
	// Chunk 0: sum 2 → u = min(8, 8) = 8. Chunk 1: sum 1 → u = 4.
	tab.associateFull(obj(1, 0, 2, true), 0)
	tab.associateFull(obj(2, 8, 1, true), 1)
	tab.inE[4] = true // contributes chunk size 8
	n := int64(32)
	want := int64(8 + 4 + 8 - 32/4)
	if got := tab.potential(n); got != want {
		t.Fatalf("potential = %d, want %d", got, want)
	}
}

func TestCoveredChunks(t *testing.T) {
	tab := newChunkTable(3, 2) // chunk size 8
	// Aligned 32-word object covers 4 chunks.
	if got := tab.coveredChunks(heap.Span{Addr: 16, Size: 32}); len(got) != 4 || got[0] != 2 {
		t.Fatalf("aligned coverage: %v", got)
	}
	// Unaligned 32-word object covers exactly 3 full chunks.
	if got := tab.coveredChunks(heap.Span{Addr: 19, Size: 32}); len(got) != 3 || got[0] != 3 {
		t.Fatalf("unaligned coverage: %v", got)
	}
}
