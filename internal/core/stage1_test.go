package core

import (
	"testing"

	"compaction/internal/adversary/robson"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// TestStage1MatchesRobson is the operational form of Claim 4.8:
// against a non-moving manager (where no ghosts ever arise), P_F's
// first stage must issue exactly the same per-round request stream as
// Robson's program P_R run for the same number of steps.
func TestStage1MatchesRobson(t *testing.T) {
	// P_F needs a finite c >= 2 to size its parameters; a huge c makes
	// the budget negligible, and the manager is non-moving anyway.
	cfg := sim.Config{M: 1 << 14, N: 1 << 8, C: 1 << 20, Pow2Only: true}

	type roundCounts struct {
		allocs, frees int64
		allocated     word.Size
	}
	capture := func(prog sim.Program, rounds int) []roundCounts {
		mgr, err := mm.New("first-fit")
		if err != nil {
			t.Fatal(err)
		}
		e, err := sim.NewEngine(cfg, prog, mgr)
		if err != nil {
			t.Fatal(err)
		}
		var out []roundCounts
		e.RoundHook = func(r sim.Result) {
			if r.Rounds <= rounds {
				out = append(out, roundCounts{r.Allocs, r.Frees, r.Allocated})
			}
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	pf := NewPF(Options{})
	pfCounts := capture(pf, 0) // fill below once ℓ is known
	// ℓ is known after the run; re-run capturing stage-I rounds only.
	ell := pf.Ell()
	pfCounts = capture(NewPF(Options{}), ell+1)
	prCounts := capture(robson.New(ell), ell+1)

	if len(pfCounts) < ell+1 || len(prCounts) < ell+1 {
		t.Fatalf("captured %d/%d rounds, need %d", len(pfCounts), len(prCounts), ell+1)
	}
	for i := 0; i <= ell; i++ {
		if pfCounts[i] != prCounts[i] {
			t.Errorf("round %d: P_F %+v, P_R %+v (stage-I divergence)", i, pfCounts[i], prCounts[i])
		}
	}
}

// TestStage1GhostsPreserveCounts: with a compacting manager, ghosts
// keep P_F's stage-I ALLOCATION totals no larger than against a
// non-moving manager — compaction can only reduce the waste P_F
// traps, never inflate the request stream beyond M (Claim 4.8's
// mapping preserves allocation counts per step).
func TestStage1GhostsPreserveCounts(t *testing.T) {
	run := func(mgrName string, c int64) (ell int, allocated word.Size) {
		cfg := sim.Config{M: 1 << 14, N: 1 << 8, C: c, Pow2Only: true}
		mgr, err := mm.New(mgrName)
		if err != nil {
			t.Fatal(err)
		}
		pf := NewPF(Options{})
		e, err := sim.NewEngine(cfg, pf, mgr)
		if err != nil {
			t.Fatal(err)
		}
		var s1 word.Size
		e.RoundHook = func(r sim.Result) {
			if r.Rounds <= 2*pf.Ell() {
				s1 = r.Allocated
			}
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return pf.Ell(), s1
	}
	ellFF, s1FF := run("first-fit", 16)
	ellTH, s1TH := run("threshold", 16)
	if ellFF != ellTH {
		t.Fatalf("ℓ diverged: %d vs %d", ellFF, ellTH)
	}
	if s1TH != s1FF {
		// The ghost mechanism makes the de-allocation decisions (and
		// hence the per-step allocation budget) identical regardless of
		// compaction.
		t.Errorf("stage-I allocation diverged under compaction: %d vs %d", s1TH, s1FF)
	}
}
