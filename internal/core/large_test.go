package core

import (
	"testing"

	"compaction/internal/bounds"
	"compaction/internal/mm"
	"compaction/internal/sim"
)

// TestTheorem1LargeScale pushes the validation up a scale step
// (M = 2^18, n = 2^10, M/n = 256): slower, so skipped in -short runs.
func TestTheorem1LargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run in -short mode")
	}
	cfg := sim.Config{M: 1 << 18, N: 1 << 10, C: 32, Pow2Only: true}
	h, ell, err := bounds.Theorem1(bounds.Params{M: cfg.M, N: cfg.N, C: cfg.C})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"first-fit", "threshold"} {
		name := name
		t.Run(name, func(t *testing.T) {
			mgr, err := mm.New(name)
			if err != nil {
				t.Fatal(err)
			}
			pf := NewPF(Options{})
			e, err := sim.NewEngine(cfg, pf, mgr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("HS=%.4f·M, floor %.4f·M (ℓ=%d), moves=%d",
				res.WasteFactor(), h, ell, res.Moves)
			if res.WasteFactor() < h {
				t.Errorf("bound violated at large scale: %.4f < %.4f", res.WasteFactor(), h)
			}
			if err := pf.Audit(); err != nil {
				t.Errorf("final audit: %v", err)
			}
			if u := pf.Potential(); u > res.HighWater {
				t.Errorf("potential %d exceeds HS %d", u, res.HighWater)
			}
		})
	}
}
