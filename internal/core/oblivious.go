package core

import (
	"fmt"

	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/trace"
)

// ObliviousTrace operationalizes the paper's remark in Section 2.1:
// the adversary does not really need to be told object addresses at
// run time — "it is enough to let the program know the allocator's
// algorithm and when GC is invoked" to construct the same bad request
// sequence in advance. Given a registered deterministic manager, it
// runs P_F against a shadow instance, records the request stream, and
// returns a trace that can be replayed obliviously (with no feedback)
// against a fresh instance of the same manager, producing the same
// fragmentation.
//
// The construction is exact for deterministic non-moving managers. For
// compacting managers the recorded stream shifts frees that P_F issued
// in response to moves to the start of the following round, so the
// replay may transiently hold more live space than the adaptive run;
// the engine will reject the replay if that exceeds M.
func ObliviousTrace(cfg sim.Config, managerName string, opts Options) (*trace.Trace, sim.Result, error) {
	mgr, err := mm.New(managerName)
	if err != nil {
		return nil, sim.Result{}, err
	}
	rec := trace.NewRecorder(NewPF(opts))
	e, err := sim.NewEngine(cfg, rec, mgr)
	if err != nil {
		return nil, sim.Result{}, err
	}
	res, err := e.Run()
	if err != nil {
		return nil, sim.Result{}, fmt.Errorf("core: shadow run failed: %w", err)
	}
	return rec.Result(), res, nil
}
