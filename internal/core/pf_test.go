package core

import (
	"fmt"
	"testing"

	"compaction/internal/bounds"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"

	// Register all managers for the cross-product validation.
	_ "compaction/internal/mm/bitmapff"
	_ "compaction/internal/mm/bpcompact"
	_ "compaction/internal/mm/buddy"
	_ "compaction/internal/mm/fits"
	_ "compaction/internal/mm/halffit"
	_ "compaction/internal/mm/improved"
	_ "compaction/internal/mm/markcompact"
	_ "compaction/internal/mm/rounding"
	_ "compaction/internal/mm/segregated"
	_ "compaction/internal/mm/threshold"
	_ "compaction/internal/mm/tlsf"
)

// validationConfig is the small-scale P2 setting used to validate
// Theorem 1 empirically: M = 2^16, n = 2^8 (so M/n = 256, the paper's
// ratio), c = 16.
func validationConfig() sim.Config {
	return sim.Config{M: 1 << 16, N: 1 << 8, C: 16, Pow2Only: true}
}

func runPF(t *testing.T, mgrName string, cfg sim.Config, opts Options) (*PF, sim.Result) {
	t.Helper()
	mgr, err := mm.New(mgrName)
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPF(opts)
	e, err := sim.NewEngine(cfg, pf, mgr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("P_F vs %s failed: %v", mgrName, err)
	}
	return pf, res
}

// TestTheorem1AgainstAllManagers is the headline validation (Sim-1 of
// DESIGN.md): Theorem 1 quantifies over every c-partial manager, so
// every implemented manager must end a P_F run with HS >= M·h.
func TestTheorem1AgainstAllManagers(t *testing.T) {
	cfg := validationConfig()
	p := bounds.Params{M: cfg.M, N: cfg.N, C: cfg.C}
	h, ell, err := bounds.Theorem1(p)
	if err != nil {
		t.Fatal(err)
	}
	floor := word.Size(h * float64(cfg.M))
	t.Logf("Theorem 1: h=%.4f (ℓ=%d), M·h=%d words", h, ell, floor)
	for _, name := range mm.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pf, res := runPF(t, name, cfg, Options{})
			t.Logf("%s: HS=%d (%.3f·M), target %.3f·M, moves=%d",
				name, res.HighWater, res.WasteFactor(), h, res.Moves)
			if pf.TargetH() != h {
				t.Errorf("P_F targeted h=%.4f, bounds computed %.4f", pf.TargetH(), h)
			}
			if res.HighWater < floor {
				t.Errorf("manager %s beat the lower bound: HS=%d < M·h=%d",
					name, res.HighWater, floor)
			}
		})
	}
}

// TestTheorem1AcrossParameters varies (M, n, c) and checks the bound
// holds for a representative non-moving and a compacting manager.
func TestTheorem1AcrossParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweep in -short mode")
	}
	cases := []sim.Config{
		{M: 1 << 14, N: 1 << 6, C: 8, Pow2Only: true},
		{M: 1 << 15, N: 1 << 7, C: 16, Pow2Only: true},
		{M: 1 << 16, N: 1 << 8, C: 32, Pow2Only: true},
		{M: 1 << 17, N: 1 << 8, C: 64, Pow2Only: true},
	}
	for _, cfg := range cases {
		for _, mgrName := range []string{"first-fit", "bp-compact", "threshold"} {
			cfg, mgrName := cfg, mgrName
			t.Run(fmt.Sprintf("M=%d,n=%d,c=%d/%s", cfg.M, cfg.N, cfg.C, mgrName), func(t *testing.T) {
				p := bounds.Params{M: cfg.M, N: cfg.N, C: cfg.C}
				h, _, err := bounds.Theorem1(p)
				if err != nil {
					t.Fatal(err)
				}
				_, res := runPF(t, mgrName, cfg, Options{})
				if got := res.WasteFactor(); got < h {
					t.Errorf("HS/M = %.4f below h = %.4f", got, h)
				}
			})
		}
	}
}

// TestPotentialLowerBoundsHeap checks the core soundness property of
// the analysis: the potential function u(t) never exceeds the heap
// size actually used, and never decreases across rounds (Claim 4.16).
func TestPotentialLowerBoundsHeap(t *testing.T) {
	cfg := validationConfig()
	for _, mgrName := range []string{"first-fit", "bp-compact", "improved"} {
		mgrName := mgrName
		t.Run(mgrName, func(t *testing.T) {
			mgr, err := mm.New(mgrName)
			if err != nil {
				t.Fatal(err)
			}
			pf := NewPF(Options{})
			e, err := sim.NewEngine(cfg, pf, mgr)
			if err != nil {
				t.Fatal(err)
			}
			var prevU word.Size
			var lastHS word.Addr
			e.RoundHook = func(r sim.Result) {
				u := pf.Potential()
				if u < prevU {
					t.Errorf("potential decreased: %d after %d (round %d)", u, prevU, r.Rounds)
				}
				prevU = u
				if u > r.HighWater {
					t.Errorf("potential %d exceeds heap size %d (round %d)", u, r.HighWater, r.Rounds)
				}
				lastHS = r.HighWater
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if prevU <= 0 {
				t.Error("final potential not positive")
			}
			if lastHS == 0 {
				t.Error("no rounds observed")
			}
		})
	}
}

// TestPFParameterDerivation checks ℓ, h and x wiring.
func TestPFParameterDerivation(t *testing.T) {
	cfg := validationConfig()
	pf, _ := runPF(t, "first-fit", cfg, Options{})
	p := bounds.Params{M: cfg.M, N: cfg.N, C: cfg.C}
	h, ell, err := bounds.Theorem1(p)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Ell() != ell {
		t.Errorf("P_F chose ℓ=%d, bounds says %d", pf.Ell(), ell)
	}
	if pf.TargetH() != h {
		t.Errorf("P_F h=%.4f, bounds %.4f", pf.TargetH(), h)
	}
}

func TestPFFixedEll(t *testing.T) {
	cfg := validationConfig()
	pf, res := runPF(t, "first-fit", cfg, Options{Ell: 1})
	if pf.Ell() != 1 {
		t.Fatalf("ℓ = %d, want 1", pf.Ell())
	}
	hl, err := bounds.Theorem1Ell(bounds.Params{M: cfg.M, N: cfg.N, C: cfg.C}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.WasteFactor() < hl {
		t.Errorf("fixed-ℓ run: HS/M = %.4f below h(ℓ=1) = %.4f", res.WasteFactor(), hl)
	}
}

// TestPFAblations: disabling the design ingredients must not crash,
// and the full P_F should fragment at least as well as the ablated
// variants against the compacting manager (Sim-4).
func TestPFAblations(t *testing.T) {
	cfg := validationConfig()
	_, fullRes := runPF(t, "bp-compact", cfg, Options{})
	abl := map[string]Options{
		"no-stage1":  {DisableStage1: true},
		"no-density": {DisableDensity: true},
		"no-ghosts":  {DisableGhosts: true},
	}
	for name, opts := range abl {
		name, opts := name, opts
		t.Run(name, func(t *testing.T) {
			_, res := runPF(t, "bp-compact", cfg, opts)
			t.Logf("full=%.3f·M ablated(%s)=%.3f·M", fullRes.WasteFactor(), name, res.WasteFactor())
			// Ablations remove adversarial power; allow a small noise
			// margin but catch inversions.
			if res.WasteFactor() > fullRes.WasteFactor()*1.10 {
				t.Errorf("ablation %s fragments MORE than the full adversary: %.3f vs %.3f",
					name, res.WasteFactor(), fullRes.WasteFactor())
			}
		})
	}
}

// TestPFIsLegal: P_F must be a legal P2(M, n) program — the engine
// enforces M and the power-of-two sizes, so a clean run suffices; we
// also confirm it stays comfortably under the round budget.
func TestPFIsLegal(t *testing.T) {
	cfg := validationConfig()
	_, res := runPF(t, "best-fit", cfg, Options{})
	if res.Rounds != Rounds(cfg.N) {
		t.Errorf("rounds = %d, want %d", res.Rounds, Rounds(cfg.N))
	}
	if res.MaxLive > cfg.M {
		t.Errorf("max live %d exceeds M=%d", res.MaxLive, cfg.M)
	}
}

func TestPFRejectsNonPow2Config(t *testing.T) {
	cfg := validationConfig()
	cfg.Pow2Only = false
	mgr, err := mm.New("first-fit")
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(cfg, NewPF(Options{}), mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("P_F accepted a non-P2 configuration")
		}
	}()
	_, _ = e.Run()
}
