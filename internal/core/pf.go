// Package core implements the primary contribution of Cohen & Petrank
// (PLDI 2013): the adversarial program P_F (Algorithm 1) that forces
// every c-partial memory manager to use a heap of at least M·h words
// (Theorem 1, computed in internal/bounds), together with the
// association and potential-function machinery of Section 4.
//
// P_F runs in two stages:
//
//   - Stage I (steps 0..ℓ) is Robson's bad program adapted to
//     compaction with ghost objects: any object the manager moves is
//     freed immediately but continues to be counted at its original
//     address, so the de-allocation decisions match the compaction-free
//     execution of the reduction theorem (Claim 4.8). Steps ℓ+1..2ℓ−1
//     are null steps.
//   - Stage II (steps 2ℓ..log2(n)−2) maintains, for every aligned
//     chunk of size 2^i, an association set O_D with density at least
//     2^-ℓ > 1/c, so evacuating a chunk always costs the manager more
//     compaction budget than the allocation that reuses it refunds. At
//     each step it frees as much associated space as the density floor
//     allows (line 13) and allocates ⌊x·M·2^{-i-2}⌋ objects of size
//     2^{i+2} (line 14), each claiming three fresh chunks.
package core

import (
	"fmt"
	"slices"

	"compaction/internal/adversary"
	"compaction/internal/bounds"
	"compaction/internal/heap"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// Options configure P_F. The zero value selects the paper's algorithm
// with the bound-maximizing ℓ; the Disable* switches implement the
// ablations studied in the benchmarks.
type Options struct {
	// Ell fixes the density exponent ℓ; 0 picks the ℓ that maximizes
	// the Theorem 1 bound for the run's (M, n, c).
	Ell int
	// DisableStage1 skips Robson's first stage (ablation).
	DisableStage1 bool
	// DisableDensity makes stage II free greedily with no density
	// floor (ablation: chunks become cheap to evacuate).
	DisableDensity bool
	// DisableGhosts makes stage I forget compacted objects instead of
	// keeping them as ghosts (ablation: compaction perturbs Robson's
	// offsets).
	DisableGhosts bool
}

// PF is the paper's adversary program.
type PF struct {
	opts Options

	// Parameters resolved at the first Step call.
	initialized bool
	m, n        word.Size
	c           int64
	ell         int
	bigL        int     // log2(n)
	x           float64 // per-step allocation fraction of line 14
	hEll        float64 // Theorem 1 bound at the chosen ℓ

	round int
	f     word.Addr // Robson offset f_i
	// objs is indexed by ObjectID (the engine hands out sequential
	// IDs); nil marks an untracked slot. Object records live in arena
	// pages so their addresses stay stable without a per-object
	// allocation.
	objs   []*object
	arena  []object
	liveW  word.Size // live words (engine ground truth mirror)
	table  *chunkTable
	stage2 bool

	// Reused per-step scratch buffers. The engine consumes frees within
	// the step and the trace recorder copies allocs, so both may be
	// overwritten by the next step.
	allocBuf   []word.Size
	freeBuf    []heap.ObjectID
	trackedBuf []adversary.Tracked

	// uFirst is the potential right after the line-9 association, the
	// quantity Lemma 4.5 bounds from below (exposed for validation).
	uFirst word.Size
}

var _ sim.Program = (*PF)(nil)

// NewPF builds the adversary.
func NewPF(opts Options) *PF {
	return &PF{opts: opts}
}

// arenaPageSize is the number of object records per arena page.
const arenaPageSize = 8192

// newObject carves a stable-address object record from the arena.
func (p *PF) newObject(id heap.ObjectID, s heap.Span) *object {
	if len(p.arena) == cap(p.arena) {
		p.arena = make([]object, 0, arenaPageSize)
	}
	p.arena = append(p.arena, object{id: id, span: s, live: true})
	return &p.arena[len(p.arena)-1]
}

// obj returns the tracked object with the given ID, or nil.
func (p *PF) obj(id heap.ObjectID) *object {
	if int64(id) < int64(len(p.objs)) {
		return p.objs[id]
	}
	return nil
}

func (p *PF) setObj(id heap.ObjectID, o *object) {
	for int64(id) >= int64(len(p.objs)) {
		p.objs = append(p.objs, nil)
	}
	p.objs[id] = o
}

func (p *PF) delObj(id heap.ObjectID) {
	if int64(id) < int64(len(p.objs)) {
		p.objs[id] = nil
	}
}

// fillAllocs returns a reused buffer holding count copies of size.
func (p *PF) fillAllocs(count, size word.Size) []word.Size {
	buf := p.allocBuf[:0]
	for i := word.Size(0); i < count; i++ {
		buf = append(buf, size)
	}
	p.allocBuf = buf
	return buf
}

// Name implements sim.Program.
func (p *PF) Name() string { return "pf" }

// Ell returns the density exponent in use (after the first step).
func (p *PF) Ell() int { return p.ell }

// TargetH returns the Theorem 1 waste factor h(M, n, c, ℓ) the run is
// designed to force (after the first step).
func (p *PF) TargetH() float64 { return p.hEll }

// Rounds returns the total number of engine rounds P_F uses for a
// given maximum object size: steps 0..log2(n)−2.
func Rounds(n word.Size) int { return word.Log2(n) - 1 }

func (p *PF) init(v *sim.View) error {
	p.m, p.n, p.c = v.Config.M, v.Config.N, v.Config.C
	p.bigL = word.Log2(p.n)
	if !v.Config.Pow2Only {
		return fmt.Errorf("core: P_F requires a P2 run (Pow2Only)")
	}
	params := bounds.Params{M: p.m, N: p.n, C: p.c}
	if err := params.Validate(); err != nil {
		return fmt.Errorf("core: %v", err)
	}
	if p.opts.Ell > 0 {
		p.ell = p.opts.Ell
		h, err := bounds.Theorem1Ell(params, p.ell)
		if err != nil {
			return err
		}
		p.hEll = h
	} else {
		h, ell, err := bounds.Theorem1(params)
		if err != nil {
			return err
		}
		if ell == 0 {
			return fmt.Errorf("core: no admissible ℓ for M=%d n=%d c=%d", p.m, p.n, p.c)
		}
		p.ell, p.hEll = ell, h
	}
	p.x = (1 - p.hEll/float64(word.Pow2(p.ell))) / float64(p.ell+1)
	if p.x <= 0 {
		return fmt.Errorf("core: non-positive allocation fraction x=%g (h=%g, ℓ=%d)", p.x, p.hEll, p.ell)
	}
	if !p.opts.DisableStage1 {
		// Pre-size the per-run buffers to their stage-I peaks (step 0
		// allocates M unit objects) so the hot loop never re-grows them.
		p.allocBuf = make([]word.Size, 0, p.m)
		p.freeBuf = make([]heap.ObjectID, 0, p.m/2+1)
		p.trackedBuf = make([]adversary.Tracked, 0, p.m)
		p.objs = make([]*object, 0, p.m+1)
	}
	p.initialized = true
	return nil
}

// Step implements sim.Program, mapping engine rounds to the steps of
// Algorithm 1: round r is step r; stage I covers steps 0..ℓ, steps
// ℓ+1..2ℓ−1 are null, and stage II covers steps 2ℓ..log2(n)−2.
func (p *PF) Step(v *sim.View) ([]heap.ObjectID, []word.Size, bool) {
	if !p.initialized {
		if err := p.init(v); err != nil {
			panic(err)
		}
	}
	step := p.round
	p.round++
	last := p.bigL - 2
	done := step >= last
	switch {
	case step < 2*p.ell:
		if p.opts.DisableStage1 {
			return nil, nil, done
		}
		frees, allocs := p.stage1(step)
		return frees, allocs, done
	default:
		if !p.stage2 {
			p.enterStage2()
		}
		if p.table.step < step {
			p.table.doubleStep()
			if p.table.step != step {
				panic(fmt.Sprintf("core: step skew: table at %d, program at %d", p.table.step, step))
			}
		}
		frees := p.stage2Frees()
		allocs := p.stage2Allocs(step)
		return frees, allocs, done
	}
}

// stage1 runs step i of the Robson-with-ghosts stage.
func (p *PF) stage1(step int) ([]heap.ObjectID, []word.Size) {
	switch {
	case step == 0:
		p.f = 0
		return nil, p.fillAllocs(p.m, 1)
	case step <= p.ell:
		align := word.Pow2(step)
		tracked := p.trackedStage1()
		p.f = adversary.ChooseOffset(tracked, p.f, align)
		frees := p.freeBuf[:0]
		var counted word.Size // live + ghost words that remain
		for _, tr := range tracked {
			o := p.obj(tr.ID)
			if adversary.Occupying(o.span, p.f, align) {
				counted += o.size()
				continue
			}
			if o.live {
				frees = append(frees, o.id)
				o.live = false
				p.liveW -= o.size()
			}
			// Non-occupying ghosts disappear from consideration.
			p.delObj(o.id)
		}
		p.freeBuf = frees
		count := (p.m - counted) / align
		return frees, p.fillAllocs(count, align)
	default:
		return nil, nil // null steps ℓ+1..2ℓ−1
	}
}

// trackedStage1 returns live objects and ghosts in address order,
// reusing a scratch buffer.
func (p *PF) trackedStage1() []adversary.Tracked {
	out := p.trackedBuf[:0]
	for _, o := range p.objs {
		if o != nil && (o.live || o.ghost) {
			out = append(out, adversary.Tracked{ID: o.id, Span: o.span, Ghost: o.ghost})
		}
	}
	slices.SortFunc(out, func(a, b adversary.Tracked) int {
		switch {
		case a.Span.Addr < b.Span.Addr:
			return -1
		case a.Span.Addr > b.Span.Addr:
			return 1
		case a.ID < b.ID: // a ghost may share its address with a live object
			return -1
		default:
			return 1
		}
	})
	p.trackedBuf = out
	return out
}

// enterStage2 performs line 9: associate every remaining live object
// with the chunk (size 2^{2ℓ−1}) containing its f_ℓ-occupying word.
//
// Ghosts are dropped here, not associated: Definition 4.1 says ghost
// objects "are no longer considered by PF in subsequent steps". This
// matters for the bound — if ghosts entered O_D as dead mass, line 13
// could free the live objects colocated with them and hand the manager
// reusable chunks that were never paid for with stage-II compaction,
// breaking Proposition 4.19 (we verified exactly this leak against the
// threshold evacuator before fixing it; see TestLemmaAccounting).
func (p *PF) enterStage2() {
	p.stage2 = true
	start := 2*p.ell - 1
	if p.opts.DisableStage1 || start < 0 {
		start = 2 * p.ell
		p.table = newChunkTable(start, p.ell)
		return
	}
	p.table = newChunkTable(start, p.ell)
	alignL := word.Pow2(p.ell)
	cs := p.table.chunkSize()
	for _, o := range p.objs {
		if o == nil {
			continue
		}
		if o.ghost {
			o.ghost = false // ghosts disappear at the stage boundary
			p.delObj(o.id)
			continue
		}
		if !o.live {
			continue
		}
		if !adversary.Occupying(o.span, p.f, alignL) {
			// Everything surviving stage I is f_ℓ-occupying by
			// construction; defensive check.
			panic(fmt.Sprintf("core: stage-I survivor %d is not f_ℓ-occupying", o.id))
		}
		w := adversary.OccupyingWord(o.span, p.f, alignL)
		p.table.associateFull(o, w/cs)
	}
	p.uFirst = p.table.potential(p.n)
}

// UFirst returns u(t_first), the potential right after the line-9
// association (0 before stage II).
func (p *PF) UFirst() word.Size { return p.uFirst }

// stage2Frees runs line 13 (the density-preserving trim).
func (p *PF) stage2Frees() []heap.ObjectID {
	frees := p.freeBuf[:0]
	if p.opts.DisableDensity {
		// Ablation: free every live associated object outright.
		for d := range p.table.chunks {
			for _, o := range p.table.chunks[d] {
				if o.live {
					o.live = false
					p.liveW -= o.size()
					frees = append(frees, o.id)
				}
			}
		}
		// Associations of freed objects are removed (P_F de-allocated
		// them).
		for _, id := range frees {
			o := p.obj(id)
			for o.nw > 0 {
				p.table.removeEntry(o, o.wchunks[0])
			}
		}
		slices.Sort(frees)
		p.freeBuf = frees
		return frees
	}
	p.table.trim(func(o *object) {
		p.liveW -= o.size()
		frees = append(frees, o.id)
	})
	p.freeBuf = frees
	return frees
}

// stage2Allocs runs line 14: ⌊x·M·2^{−i−2}⌋ objects of size 2^{i+2},
// capped by the M-bound.
func (p *PF) stage2Allocs(step int) []word.Size {
	size := word.Pow2(step + 2)
	count := word.Size(p.x * float64(p.m) / float64(size))
	if maxByM := (p.m - p.liveW) / size; count > maxByM {
		count = maxByM
	}
	return p.fillAllocs(count, size)
}

// Placed implements sim.Program.
func (p *PF) Placed(id heap.ObjectID, s heap.Span) {
	o := p.newObject(id, s)
	p.setObj(id, o)
	p.liveW += s.Size
	if !p.stage2 {
		return
	}
	covered := p.table.coveredChunks(s)
	if len(covered) < 3 {
		panic(fmt.Sprintf("core: stage-II object %v covers %d chunks, need 3", s, len(covered)))
	}
	p.table.placeNew(o, covered[0], covered[1], covered[2])
}

// Moved implements sim.Program: compacted objects are freed
// immediately. In stage I they persist as ghosts at their original
// address; in stage II their associations persist as dead entries.
func (p *PF) Moved(id heap.ObjectID, from, _ heap.Span) bool {
	o := p.obj(id)
	if o == nil {
		panic(fmt.Sprintf("core: move of untracked object %d", id))
	}
	if !o.live {
		panic(fmt.Sprintf("core: move of dead object %d", id))
	}
	o.live = false
	p.liveW -= o.size()
	if !p.stage2 {
		if p.opts.DisableGhosts {
			p.delObj(id)
		} else {
			o.ghost = true
			o.span = from // counted at its pre-move address
		}
	}
	return true
}

// Potential returns the paper's potential function u(t) over the
// current stage-II partition, a certified lower bound on the heap size
// used so far. It returns 0 before stage II begins.
func (p *PF) Potential() word.Size {
	if !p.stage2 {
		return 0
	}
	return p.table.potential(p.n)
}
