package core

import (
	"testing"

	"compaction/internal/mm"
	"compaction/internal/sim"
)

func TestUFirstPerManager(t *testing.T) {
	cfg := validationConfig()
	for _, name := range []string{"first-fit", "best-fit", "aligned-first-fit", "threshold", "bp-compact"} {
		mgr, _ := mm.New(name)
		pf := NewPF(Options{})
		e, _ := sim.NewEngine(cfg, pf, mgr)
		var q1 int64
		e.RoundHook = func(r sim.Result) {
			if r.Rounds <= 2*pf.Ell() {
				q1 = r.Moved
			}
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		ell := pf.Ell()
		bound := float64(cfg.M)*(float64(ell)+2)/2 - float64(int64(1)<<uint(ell))*float64(q1) - float64(cfg.N)/4
		t.Logf("%s: uFirst=%d lemma4.5=%.0f q1=%d HS=%d", name, pf.UFirst(), bound, q1, res.HighWater)
	}
}
