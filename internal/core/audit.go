package core

import (
	"fmt"

	"compaction/internal/heap"
	"compaction/internal/word"
)

// Audit verifies the structural invariants of the stage-II association
// (Claim 4.15 of the paper and the E-set rules) and returns the first
// violation found. It is meant to be called from tests between rounds;
// it returns nil before stage II begins.
//
// Checked invariants:
//
//  1. the sets O_D are consistent: every association entry appears in
//     the object's on-object chunk list and vice versa;
//  2. every object is associated with exactly one chunk (full) or two
//     chunks (one half each);
//  3. every LIVE associated object physically intersects each chunk it
//     is associated with;
//  4. chunks in E have no associated objects;
//  5. association sums are positive (no empty chunk entries linger).
func (p *PF) Audit() error {
	if !p.stage2 {
		return nil
	}
	t := p.table
	cs := t.chunkSize()

	// 1 & 5: chunk-side consistency.
	seen := make(map[*object][]int64)
	for d, set := range t.chunks {
		if len(set) == 0 {
			return fmt.Errorf("core audit: chunk %d has an empty association set", d)
		}
		if t.inE[d] {
			return fmt.Errorf("core audit: chunk %d is in E but has %d entries", d, len(set))
		}
		var sum word.Size
		for _, o := range set {
			portionOf, ok := t.entry(d, o)
			if !ok {
				return fmt.Errorf("core audit: chunk %d entry for object %d missing from its chunk list", d, o.id)
			}
			seen[o] = append(seen[o], d)
			sum += contribution(o, portionOf)
			if o.live {
				chunkSpan := heap.Span{Addr: d * cs, Size: cs}
				if !o.span.Overlaps(chunkSpan) {
					return fmt.Errorf("core audit: live object %d %v associated with chunk %d %v it does not intersect (Claim 4.15)",
						o.id, o.span, d, chunkSpan)
				}
			}
		}
		if sum <= 0 {
			return fmt.Errorf("core audit: chunk %d has non-positive association sum %d", d, sum)
		}
	}

	// 2: object-side consistency against the on-object chunk lists.
	for o, ds := range seen {
		if len(ds) > 2 {
			return fmt.Errorf("core audit: object %d associated with %d chunks", o.id, len(ds))
		}
		if int(o.nw) != len(ds) {
			return fmt.Errorf("core audit: object %d chunk list has %d entries, chunks show %d",
				o.id, o.nw, len(ds))
		}
		if len(ds) == 2 {
			for _, d := range ds {
				if p, _ := t.entry(d, o); p != half {
					return fmt.Errorf("core audit: object %d in two chunks but not as halves", o.id)
				}
			}
		}
	}
	for _, o := range p.objs {
		if o != nil && int(o.nw) != len(seen[o]) {
			return fmt.Errorf("core audit: object %d has stale chunk-list entries", o.id)
		}
	}

	// 4 is covered above; verify E chunks are truly empty.
	for d := range t.inE {
		if len(t.chunks[d]) != 0 {
			return fmt.Errorf("core audit: E chunk %d has entries", d)
		}
	}
	return nil
}
