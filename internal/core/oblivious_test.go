package core

import (
	"testing"

	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/trace"
)

// TestObliviousReplayForcesSameHeap: the precomputed request stream,
// replayed with no feedback against a fresh instance of the same
// deterministic manager, forces exactly the heap the adaptive
// adversary forced.
func TestObliviousReplayForcesSameHeap(t *testing.T) {
	cfg := validationConfig()
	for _, name := range []string{"first-fit", "best-fit", "buddy", "tlsf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, shadowRes, err := ObliviousTrace(cfg, name, Options{})
			if err != nil {
				t.Fatal(err)
			}
			mgr, err := mm.New(name)
			if err != nil {
				t.Fatal(err)
			}
			e, err := sim.NewEngine(cfg, trace.NewReplayer(tr), mgr)
			if err != nil {
				t.Fatal(err)
			}
			replayRes, err := e.Run()
			if err != nil {
				t.Fatalf("oblivious replay failed: %v", err)
			}
			if replayRes.HighWater != shadowRes.HighWater {
				t.Errorf("oblivious replay HS=%d, adaptive HS=%d", replayRes.HighWater, shadowRes.HighWater)
			}
		})
	}
}

// TestObliviousTraceIsSelfContained: the trace carries the model
// parameters of the shadow run.
func TestObliviousTraceIsSelfContained(t *testing.T) {
	cfg := validationConfig()
	tr, _, err := ObliviousTrace(cfg, "first-fit", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.M != cfg.M || tr.N != cfg.N || tr.C != cfg.C {
		t.Fatalf("trace header %+v does not match config", tr)
	}
	if len(tr.Rounds) != Rounds(cfg.N) {
		t.Fatalf("trace rounds %d, want %d", len(tr.Rounds), Rounds(cfg.N))
	}
}

func TestObliviousTraceUnknownManager(t *testing.T) {
	if _, _, err := ObliviousTrace(validationConfig(), "nope", Options{}); err == nil {
		t.Fatal("unknown manager accepted")
	}
}
