package core

import (
	"testing"

	"compaction/internal/bounds"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// TestLemmaAccounting traces the quantities of Lemmas 4.5/4.6 for a
// run against the threshold compactor and reports which inequality is
// tight, as a diagnostic for the faithfulness of the P_F
// implementation.
func TestLemmaAccounting(t *testing.T) {
	cfg := validationConfig()
	mgr, err := mm.New("threshold")
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPF(Options{})
	e, err := sim.NewEngine(cfg, pf, mgr)
	if err != nil {
		t.Fatal(err)
	}
	var s1, q1 word.Size
	e.RoundHook = func(r sim.Result) {
		// Stage I ends after round index 2ℓ−1; allocation in null
		// rounds is zero, so reading at every round up to 2ℓ works.
		if r.Rounds <= 2*pf.Ell() {
			s1, q1 = r.Allocated, r.Moved
		}
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	ell := pf.Ell()
	m, n := cfg.M, cfg.N
	pow := word.Pow2(ell)
	s2 := res.Allocated - s1
	q2 := res.Moved - q1
	h := pf.TargetH()
	L := word.Log2(n)

	t.Logf("ℓ=%d h=%.4f x=%.4f", ell, h, pf.x)
	t.Logf("s1=%d (claim ≤ %.0f)", s1, float64(m)*(float64(ell)+1-0.5*sumSf(ell)))
	t.Logf("q1=%d q2=%d (budget %d)", q1, q2, res.Allocated/word.Size(cfg.C))
	uFirstBound := float64(m)*(float64(ell)+2)/2 - float64(pow*q1) - float64(n)/4
	t.Logf("uFirst=%d (lemma 4.5 ≥ %.0f)", pf.UFirst(), uFirstBound)
	r := float64(L-2*ell-1) / float64(ell+1)
	s2Bound := float64(m)*(1-h/float64(pow))*r - 2*float64(n)
	t.Logf("s2=%d (claim 4.18 ≥ %.0f)", s2, s2Bound)
	uFin := pf.Potential()
	growthBound := 0.75*float64(s2) - float64(pow*q2)
	t.Logf("uFinish=%d growth=%d (claim 4.20 ≥ %.0f)", uFin, uFin-pf.UFirst(), growthBound)
	t.Logf("HS=%d  M·h=%.0f", res.HighWater, h*float64(m))
	t.Logf("placeNew reuse: dead-entry u=%d, E u=%d", pf.table.reusedDeadU, pf.table.reusedEU)

	if float64(pf.UFirst()) < uFirstBound {
		t.Errorf("Lemma 4.5 violated: uFirst=%d < %.0f", pf.UFirst(), uFirstBound)
	}
	if float64(s2) < s2Bound {
		t.Errorf("Claim 4.18 violated: s2=%d < %.0f", s2, s2Bound)
	}
	if float64(uFin-pf.UFirst()) < growthBound {
		t.Errorf("Claim 4.20 violated: growth=%d < %.0f", uFin-pf.UFirst(), growthBound)
	}
}

func sumSf(ell int) float64 {
	s := 0.0
	for i := 1; i <= ell; i++ {
		s += float64(i) / float64((int64(1)<<uint(i))-1)
	}
	return s
}

// quick cross-check that bounds and pf agree on h for the validation
// config (keeps the diagnostic honest).
func TestDebugConfigH(t *testing.T) {
	cfg := validationConfig()
	h, ell, err := bounds.Theorem1(bounds.Params{M: cfg.M, N: cfg.N, C: cfg.C})
	if err != nil {
		t.Fatal(err)
	}
	if ell < 1 || h <= 1 {
		t.Fatalf("unexpected h=%.4f ℓ=%d", h, ell)
	}
}
