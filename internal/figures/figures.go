// Package figures regenerates the evaluation artifacts of the paper:
// the three bound figures (Figures 1–3) and the simulation experiments
// of DESIGN.md (Sim-1..Sim-4). The cmd/figures tool and the root
// benchmark suite are thin wrappers around this package.
package figures

import (
	"fmt"

	"compaction/internal/bounds"
	"compaction/internal/core"
	"compaction/internal/mm"
	"compaction/internal/obs"
	"compaction/internal/plot"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// PaperM and PaperN are the "realistic parameters" of the paper's
// figures: 256 MB of live space with 1 MB maximum objects, in words
// with the smallest object = 1.
const (
	PaperM = 256 * word.MiW
	PaperN = word.MiW
)

// Figure1 reproduces Figure 1: the lower bound on the waste factor h
// as a function of the compaction bound c ∈ [10, 100] for M, n, with
// the (trivial) bound of Bendersky & Petrank 2011 for comparison.
func Figure1(m, n word.Size) (plot.Figure, error) {
	var hx, hy, bx, by []float64
	for c := int64(10); c <= 100; c++ {
		p := bounds.Params{M: m, N: n, C: c}
		h, _, err := bounds.Theorem1(p)
		if err != nil {
			return plot.Figure{}, fmt.Errorf("figure1 at c=%d: %w", c, err)
		}
		hx = append(hx, float64(c))
		hy = append(hy, h)
		bp := bounds.BPLower(p)
		if bp < 1 {
			bp = 1 // the old bound never beats the trivial factor here
		}
		bx = append(bx, float64(c))
		by = append(by, bp)
	}
	return plot.Figure{
		Title:  fmt.Sprintf("Figure 1: lower bound on waste factor h (M=%s, n=%s)", word.Format(m), word.Format(n)),
		XLabel: "c (compaction bound: 1/c of allocated space may move)",
		YLabel: "h (required heap as multiple of M)",
		Series: []plot.Series{
			{Name: "this paper (Theorem 1)", X: hx, Y: hy},
			{Name: "Bendersky-Petrank 2011", X: bx, Y: by},
		},
	}, nil
}

// Figure2 reproduces Figure 2: the lower bound as a function of the
// maximum object size n ∈ [1Ki, 1Gi] with c = 100 and M = 256·n.
func Figure2(c int64) (plot.Figure, error) {
	var xs, ys []float64
	for exp := 10; exp <= 30; exp++ {
		n := word.Pow2(exp)
		p := bounds.Params{M: 256 * n, N: n, C: c}
		h, _, err := bounds.Theorem1(p)
		if err != nil {
			return plot.Figure{}, fmt.Errorf("figure2 at n=2^%d: %w", exp, err)
		}
		xs = append(xs, float64(exp))
		ys = append(ys, h)
	}
	return plot.Figure{
		Title:  fmt.Sprintf("Figure 2: lower bound on waste factor h vs n (c=%d, M=256n)", c),
		XLabel: "log2(n) (n = 1Ki .. 1Gi)",
		YLabel: "h",
		Series: []plot.Series{{Name: "this paper (Theorem 1)", X: xs, Y: ys}},
	}, nil
}

// Figure3 reproduces Figure 3: the new upper bound (Theorem 2) against
// the previous best, min((c+1)·M, Robson's rounding bound), for
// c ∈ [11, 100] (Theorem 2 needs c > ½·log2 n).
func Figure3(m, n word.Size) (plot.Figure, error) {
	var nx, ny, px, py []float64
	lo := int64(word.Log2(n))/2 + 1
	if lo < 10 {
		lo = 10
	}
	for c := lo; c <= 100; c++ {
		p := bounds.Params{M: m, N: n, C: c}
		ub, err := bounds.Theorem2(p)
		if err != nil {
			return plot.Figure{}, fmt.Errorf("figure3 at c=%d: %w", c, err)
		}
		nx = append(nx, float64(c))
		ny = append(ny, ub)
		px = append(px, float64(c))
		py = append(py, bounds.PreviousUpper(p))
	}
	return plot.Figure{
		Title:  fmt.Sprintf("Figure 3: upper bound on waste factor (M=%s, n=%s)", word.Format(m), word.Format(n)),
		XLabel: "c",
		YLabel: "waste factor (heap as multiple of M)",
		Series: []plot.Series{
			{Name: "this paper (Theorem 2)", X: nx, Y: ny},
			{Name: "previous best (min of Robson, (c+1)M)", X: px, Y: py},
		},
	}, nil
}

// SimRow is one manager's outcome against an adversary.
type SimRow struct {
	Manager string
	Result  sim.Result
	// Bound is the theoretical lower bound (words) the run must respect,
	// 0 when no bound applies to this manager class.
	Bound word.Size
}

// RunPFAcrossManagers executes P_F against every registered manager
// (Sim-1) and returns the rows plus the Theorem 1 floor in words.
func RunPFAcrossManagers(cfg sim.Config) ([]SimRow, word.Size, error) {
	floor, err := bounds.Theorem1Words(bounds.Params{M: cfg.M, N: cfg.N, C: cfg.C})
	if err != nil {
		return nil, 0, err
	}
	var rows []SimRow
	for _, name := range mm.Names() {
		mgr, err := mm.New(name)
		if err != nil {
			return nil, 0, err
		}
		e, err := sim.NewEngine(cfg, core.NewPF(core.Options{}), mgr)
		if err != nil {
			return nil, 0, err
		}
		res, err := e.Run()
		if err != nil {
			return nil, 0, fmt.Errorf("P_F vs %s: %w", name, err)
		}
		rows = append(rows, SimRow{Manager: name, Result: res, Bound: floor})
	}
	return rows, floor, nil
}

// GrowthFigure traces heap usage round by round while P_F runs
// against each named manager: the operational picture of how the
// adversary ratchets the high-water mark up step after step. The
// series comes from the engine's tracer (obs.SeriesRecorder), the
// same per-round stream compactsim's -series-out records.
func GrowthFigure(cfg sim.Config, managers []string) (plot.Figure, error) {
	fig := plot.Figure{
		Title: fmt.Sprintf("Heap growth under P_F (M=%s, n=%s, c=%d)",
			word.Format(cfg.M), word.Format(cfg.N), cfg.C),
		XLabel: "round (adversary step)",
		YLabel: "HS/M",
	}
	var rec obs.SeriesRecorder
	for _, name := range managers {
		mgr, err := mm.New(name)
		if err != nil {
			return plot.Figure{}, err
		}
		e, err := sim.NewEngine(cfg, core.NewPF(core.Options{}), mgr)
		if err != nil {
			return plot.Figure{}, err
		}
		rec.Reset()
		e.Tracer = &rec
		if _, err := e.Run(); err != nil {
			return plot.Figure{}, fmt.Errorf("growth: P_F vs %s: %w", name, err)
		}
		xs, ys := rec.WasteSeries(cfg.M)
		fig.Series = append(fig.Series, plot.Series{Name: name, X: xs, Y: ys})
	}
	return fig, nil
}

// PFWasteSeries runs P_F against the named managers over a range of
// compaction bounds and returns one empirical series per manager plus
// the Theorem 1 curve — the simulated analogue of Figure 1.
func PFWasteSeries(m, n word.Size, cs []int64, managers []string) (plot.Figure, error) {
	fig := plot.Figure{
		Title:  fmt.Sprintf("Simulated Figure 1: measured waste of P_F runs (M=%s, n=%s)", word.Format(m), word.Format(n)),
		XLabel: "c",
		YLabel: "HS/M",
	}
	var tx, ty []float64
	for _, c := range cs {
		h, _, err := bounds.Theorem1(bounds.Params{M: m, N: n, C: c})
		if err != nil {
			return plot.Figure{}, err
		}
		tx = append(tx, float64(c))
		ty = append(ty, h)
	}
	fig.Series = append(fig.Series, plot.Series{Name: "Theorem 1 bound", X: tx, Y: ty})
	for _, name := range managers {
		var xs, ys []float64
		for _, c := range cs {
			mgr, err := mm.New(name)
			if err != nil {
				return plot.Figure{}, err
			}
			cfg := sim.Config{M: m, N: n, C: c, Pow2Only: true}
			e, err := sim.NewEngine(cfg, core.NewPF(core.Options{}), mgr)
			if err != nil {
				return plot.Figure{}, err
			}
			res, err := e.Run()
			if err != nil {
				return plot.Figure{}, fmt.Errorf("P_F vs %s at c=%d: %w", name, c, err)
			}
			xs = append(xs, float64(c))
			ys = append(ys, res.WasteFactor())
		}
		fig.Series = append(fig.Series, plot.Series{Name: name, X: xs, Y: ys})
	}
	return fig, nil
}
