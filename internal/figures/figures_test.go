package figures

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"compaction/internal/sim"
	"compaction/internal/word"

	_ "compaction/internal/mm/bitmapff"
	_ "compaction/internal/mm/bpcompact"
	_ "compaction/internal/mm/buddy"
	_ "compaction/internal/mm/fits"
	_ "compaction/internal/mm/halffit"
	_ "compaction/internal/mm/improved"
	_ "compaction/internal/mm/markcompact"
	_ "compaction/internal/mm/rounding"
	_ "compaction/internal/mm/segregated"
	_ "compaction/internal/mm/threshold"
	_ "compaction/internal/mm/tlsf"
)

func yAt(xs, ys []float64, x float64) (float64, bool) {
	for i := range xs {
		if xs[i] == x {
			return ys[i], true
		}
	}
	return 0, false
}

func TestFigure1MatchesPaperAnchors(t *testing.T) {
	fig, err := Figure1(PaperM, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	newBound := fig.Series[0]
	anchors := map[float64]float64{10: 2.0, 50: 3.15, 100: 3.5}
	for c, want := range anchors {
		got, ok := yAt(newBound.X, newBound.Y, c)
		if !ok {
			t.Fatalf("no sample at c=%v", c)
		}
		if math.Abs(got-want) > 0.05 {
			t.Errorf("h(c=%v) = %.4f, paper ≈ %.2f", c, got, want)
		}
	}
	// The previous bound stays flat at the trivial factor 1.
	old := fig.Series[1]
	for i := range old.Y {
		if old.Y[i] != 1 {
			t.Errorf("BP 2011 bound above trivial at c=%v: %v", old.X[i], old.Y[i])
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	fig, err := Figure2(100)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.X) != 21 { // exponents 10..30
		t.Fatalf("samples = %d", len(s.X))
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1]-1e-9 {
			t.Errorf("h not monotone at n=2^%v: %.4f < %.4f", s.X[i], s.Y[i], s.Y[i-1])
		}
	}
	if s.Y[0] < 2.0 || s.Y[len(s.Y)-1] < 4.0 {
		t.Errorf("endpoints off: h(1Ki)=%.3f h(1Gi)=%.3f", s.Y[0], s.Y[len(s.Y)-1])
	}
}

func TestFigure3NewBelowPrevious(t *testing.T) {
	fig, err := Figure3(PaperM, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	newUB, prev := fig.Series[0], fig.Series[1]
	for i := range newUB.X {
		c := newUB.X[i]
		if c < 20 || c > 100 {
			continue
		}
		p, ok := yAt(prev.X, prev.Y, c)
		if !ok {
			t.Fatalf("previous bound missing at c=%v", c)
		}
		if newUB.Y[i] >= p {
			t.Errorf("c=%v: new UB %.3f not below previous %.3f", c, newUB.Y[i], p)
		}
	}
}

func TestFiguresRenderToCSVAndASCII(t *testing.T) {
	figs := make([]interface {
		WriteCSV(w *bytes.Buffer) error
	}, 0)
	_ = figs
	f1, err := Figure1(PaperM, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f1.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "this paper (Theorem 1)") {
		t.Fatal("CSV header missing series name")
	}
	if out := f1.ASCII(60, 15); !strings.Contains(out, "Figure 1") {
		t.Fatal("ASCII missing title")
	}
}

func TestRunPFAcrossManagers(t *testing.T) {
	cfg := sim.Config{M: 1 << 14, N: 1 << 6, C: 8, Pow2Only: true}
	rows, floor, err := RunPFAcrossManagers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("only %d managers ran", len(rows))
	}
	if floor <= cfg.M {
		t.Fatalf("floor %d not above M", floor)
	}
	for _, r := range rows {
		if r.Result.HighWater < floor {
			t.Errorf("%s beat the bound: %d < %d", r.Manager, r.Result.HighWater, floor)
		}
	}
}

func TestPFWasteSeries(t *testing.T) {
	fig, err := PFWasteSeries(1<<14, 1<<6, []int64{8, 16}, []string{"first-fit", "bp-compact"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 { // bound + 2 managers
		t.Fatalf("series = %d", len(fig.Series))
	}
	bound := fig.Series[0]
	for _, s := range fig.Series[1:] {
		for i := range s.X {
			b, ok := yAt(bound.X, bound.Y, s.X[i])
			if !ok {
				t.Fatalf("no bound at c=%v", s.X[i])
			}
			if s.Y[i] < b {
				t.Errorf("%s at c=%v: measured %.3f below bound %.3f", s.Name, s.X[i], s.Y[i], b)
			}
		}
	}
}

func TestFigure2RejectsTinyC(t *testing.T) {
	if _, err := Figure2(1); err == nil {
		t.Fatal("c=1 accepted")
	}
}

func TestPaperConstants(t *testing.T) {
	if PaperM != 256*word.MiW || PaperN != word.MiW {
		t.Fatal("paper constants drifted")
	}
}
