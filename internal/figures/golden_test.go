package figures

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"compaction/internal/plot"
)

var update = flag.Bool("update", false, "rewrite the golden figure CSVs")

// goldenFigures lists the deterministic closed-form figures; the
// simulated figure is excluded (it is covered by its own assertions).
func goldenFigures(t *testing.T) map[string]plot.Figure {
	t.Helper()
	f1, err := Figure1(PaperM, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Figure2(100)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := Figure3(PaperM, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]plot.Figure{"figure1": f1, "figure2": f2, "figure3": f3}
}

// TestFiguresMatchGolden pins the exact figure series: any change to
// the bound formulas shows up as a diff against the recorded CSVs.
func TestFiguresMatchGolden(t *testing.T) {
	for name, fig := range goldenFigures(t) {
		name, fig := name, fig
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := fig.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".golden.csv")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (run with -update): %v", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("%s drifted from golden data; rerun with -update if intentional", name)
			}
		})
	}
}
