package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"compaction/internal/obs"
	"compaction/internal/resume"
	"compaction/internal/sim"
	"compaction/internal/sweep"

	_ "compaction/internal/mm/all"
)

// fakeClock is the deterministic clock behind Options.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testSpec is a small real grid: 2 bounds × 2 managers, seeded random
// workload — cheap, deterministic, catalog-resolvable.
func testSpec() GridSpec {
	return GridSpec{
		Program: "random", Seed: 7, Rounds: 60,
		M: 1 << 12, N: 1 << 5,
		Cs: []int64{8, 16}, Managers: []string{"first-fit", "best-fit"},
	}
}

func testTasks(t *testing.T) []Task {
	t.Helper()
	_, tasks, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func res(i int) sim.Result {
	return sim.Result{Program: "random", Manager: "first-fit", Rounds: 60, HighWater: int64(100 * (i + 1))}
}

// TestZombieCommitFenced is the core fencing guarantee: a worker that
// goes silent past the lease TTL loses the cell to a successor under a
// larger token, and its late commit — the zombie write — is rejected,
// leaving the successor's result in place.
func TestZombieCommitFenced(t *testing.T) {
	clk := newClock()
	mon := sweep.NewMonitor(obs.NewRegistry())
	c, err := NewCoordinator(testTasks(t), nil, Options{
		LeaseTTL: time.Second, Now: clk.Now, Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}

	gA, st := c.Claim("zombie")
	if st != ClaimGranted {
		t.Fatalf("claim A: %v", st)
	}
	// The zombie stops heartbeating; the lease expires.
	clk.Advance(2 * time.Second)
	gB, st := c.Claim("healthy")
	if st != ClaimGranted {
		t.Fatalf("claim B: %v", st)
	}
	if gB.Task.Cell != gA.Task.Cell {
		t.Fatalf("successor got cell %d, want the expired cell %d", gB.Task.Cell, gA.Task.Cell)
	}
	if gB.Token <= gA.Token {
		t.Fatalf("successor token %d not after zombie token %d", gB.Token, gA.Token)
	}

	// The zombie wakes up and delivers late: fenced.
	zres := res(0)
	zres.HighWater = 424242 // a wrong value that must NOT survive
	if err := c.Commit("zombie", gA.Task.Cell, gA.Token, zres); !errors.Is(err, resume.ErrFenced) {
		t.Fatalf("zombie commit: err=%v, want ErrFenced", err)
	}
	// So is its renewal and its failure report.
	if err := c.Renew("zombie", gA.Task.Cell, gA.Token); !errors.Is(err, resume.ErrFenced) {
		t.Fatalf("zombie renew: err=%v, want ErrFenced", err)
	}
	if err := c.Fail("zombie", gA.Task.Cell, gA.Token, "late failure"); !errors.Is(err, resume.ErrFenced) {
		t.Fatalf("zombie fail: err=%v, want ErrFenced", err)
	}

	// The healthy worker commits for real.
	if err := c.Commit("healthy", gB.Task.Cell, gB.Token, res(0)); err != nil {
		t.Fatalf("healthy commit: %v", err)
	}
	// And a duplicate delivery of that same commit is fenced as well.
	if err := c.Commit("healthy", gB.Task.Cell, gB.Token, res(0)); !errors.Is(err, resume.ErrFenced) {
		t.Fatalf("duplicate commit: err=%v, want ErrFenced", err)
	}

	outs := c.Outcomes()
	if outs[gB.Task.Cell].Result.HighWater != res(0).HighWater {
		t.Fatalf("cell result = %+v; the zombie's write leaked through", outs[gB.Task.Cell].Result)
	}
	p := mon.Snapshot()
	if p.LeasesReassigned != 1 {
		t.Errorf("leases reassigned = %d, want 1", p.LeasesReassigned)
	}
	if p.CommitsFenced != 2 {
		t.Errorf("commits fenced = %d, want 2 (zombie + duplicate)", p.CommitsFenced)
	}
}

// TestQuarantineAfterMaxFailures: a cell that fails on distinct
// workers MaxFailures times becomes a typed poison-cell hole and is
// never leased again; the rest of the grid still settles.
func TestQuarantineAfterMaxFailures(t *testing.T) {
	clk := newClock()
	tasks := testTasks(t)
	c, err := NewCoordinator(tasks, nil, Options{
		LeaseTTL: time.Second, MaxFailures: 2, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, st := c.Claim("w1")
	if st != ClaimGranted {
		t.Fatal(st)
	}
	poison := g.Task.Cell
	if err := c.Fail("w1", poison, g.Token, "boom 1"); err != nil {
		t.Fatal(err)
	}
	g2, st := c.Claim("w2")
	if st != ClaimGranted || g2.Task.Cell != poison {
		t.Fatalf("retry claim: state=%v cell=%d, want cell %d back", st, g2.Task.Cell, poison)
	}
	if err := c.Fail("w2", poison, g2.Token, "boom 2"); err != nil {
		t.Fatal(err)
	}
	// Quarantined now: the next claim gets a different cell.
	g3, st := c.Claim("w3")
	if st != ClaimGranted || g3.Task.Cell == poison {
		t.Fatalf("claim after quarantine: state=%v cell=%d", st, g3.Task.Cell)
	}
	// Settle the rest.
	if err := c.Commit("w3", g3.Task.Cell, g3.Token, res(g3.Task.Cell)); err != nil {
		t.Fatal(err)
	}
	for {
		g, st := c.Claim("w3")
		if st != ClaimGranted {
			break
		}
		if err := c.Commit("w3", g.Task.Cell, g.Token, res(g.Task.Cell)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Done() {
		t.Fatal("grid not settled with the poison cell quarantined")
	}
	var ce *sweep.CellError
	if !errors.As(c.Outcomes()[poison].Err, &ce) {
		t.Fatalf("quarantined outcome: %+v", c.Outcomes()[poison])
	}
	if ce.Kind != sweep.FailQuarantined || ce.Attempts != 2 || ce.Err.Error() != "boom 2" {
		t.Fatalf("quarantine hole = %+v", ce)
	}
}

// TestCoordinatorResumesFromLedger: a coordinator crash loses nothing
// — the successor replays commits and quarantines from the ledger,
// seeds its token counter above every issued token, and the
// predecessor (who does not know it is dead) is fenced out.
func TestCoordinatorResumesFromLedger(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledger")
	tasks := testTasks(t)
	clk := newClock()

	led1, err := resume.OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewCoordinator(tasks, led1, Options{LeaseTTL: time.Second, Now: clk.Now, Params: testSpec().Params()})
	if err != nil {
		t.Fatal(err)
	}
	g1, st := c1.Claim("w1")
	if st != ClaimGranted {
		t.Fatal(st)
	}
	if err := c1.Commit("w1", g1.Task.Cell, g1.Token, res(g1.Task.Cell)); err != nil {
		t.Fatal(err)
	}
	g2, st := c1.Claim("w1")
	if st != ClaimGranted {
		t.Fatal(st)
	}
	// c1 "crashes" here: g2's lease is in flight, never committed.

	led2, err := resume.OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	c2, err := NewCoordinator(tasks, led2, Options{LeaseTTL: time.Second, Now: clk.Now, Params: testSpec().Params()})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Restored() != 1 {
		t.Fatalf("restored = %d, want 1", c2.Restored())
	}
	outs := c2.Outcomes()
	if !outs[g1.Task.Cell].Restored || outs[g1.Task.Cell].Result.HighWater != res(g1.Task.Cell).HighWater {
		t.Fatalf("restored cell %d: %+v", g1.Task.Cell, outs[g1.Task.Cell])
	}

	// The successor's tokens are strictly newer than anything c1 issued.
	g3, st := c2.Claim("w2")
	if st != ClaimGranted {
		t.Fatal(st)
	}
	if g3.Token <= g2.Token {
		t.Fatalf("successor token %d not above predecessor high-water %d", g3.Token, g2.Token)
	}

	// The predecessor still thinks it owns the grid; its next ledger
	// write is fenced and it stops granting.
	g4, st := c1.Claim("w1")
	_ = g4
	if st != ClaimFailed {
		t.Fatalf("stale coordinator claim: state=%v, want ClaimFailed", st)
	}
	if err := c1.Err(); err == nil || !errors.Is(err, resume.ErrFenced) {
		t.Fatalf("stale coordinator Err = %v, want ErrFenced", err)
	}
}

// TestBindRefusesForeignLedger: a ledger written for one grid refuses
// a coordinator running different flags.
func TestBindRefusesForeignLedger(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledger")
	tasks := testTasks(t)
	led1, err := resume.OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(tasks, led1, Options{Params: testSpec().Params()}); err != nil {
		t.Fatal(err)
	}
	led1.Close()

	led2, err := resume.OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	if _, err := NewCoordinator(tasks, led2, Options{Params: "adv=random seed=8 rounds=60 ell=0"}); !errors.Is(err, resume.ErrMismatch) {
		t.Fatalf("foreign params bind: err=%v, want ErrMismatch", err)
	}
}

// startPipeWorker wires a worker to the coordinator over an in-process
// NDJSON pipe pair — the same framing the stdio transport uses.
func startPipeWorker(ctx context.Context, c *Coordinator, o WorkerOptions, errc chan<- error) {
	cr, cw := io.Pipe()
	sr, sw := io.Pipe()
	go func() { _ = ServeLines(c, cr, sw) }()
	w := NewWorker(NewLineConn(sr, cw), o)
	go func() {
		errc <- w.Run(ctx, ctx)
		cw.Close()
	}()
}

// TestDistributedMergeByteIdentical is the acceptance core: the same
// grid run single-process and run distributed (3 pipe workers, one of
// them double-delivering a commit) must merge to byte-identical CSV.
func TestDistributedMergeByteIdentical(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.WithoutCancel(t.Context()), time.Minute)
	defer cancel()
	spec := testSpec()
	cells, tasks, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}

	outs, err := sweep.RunOpts(ctx, cells, sweep.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sweep.WriteCSV(&want, outs); err != nil {
		t.Fatal(err)
	}

	mon := sweep.NewMonitor(obs.NewRegistry())
	coord, err := NewCoordinator(tasks, nil, Options{LeaseTTL: 2 * time.Second, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 3)
	for i := 0; i < 3; i++ {
		o := WorkerOptions{ID: fmt.Sprintf("w%d", i)}
		if i == 0 {
			// Worker 0 double-delivers every commit; fencing must absorb it.
			o.Hooks.CommitCopies = func(int) int { return 2 }
		}
		startPipeWorker(ctx, coord, o, errc)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	var got bytes.Buffer
	if err := sweep.WriteCSV(&got, coord.Outcomes()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("distributed CSV differs from single-process CSV:\n--- single\n%s\n--- distributed\n%s", want.Bytes(), got.Bytes())
	}
	if fenced := mon.Snapshot().CommitsFenced; fenced == 0 {
		t.Error("duplicate deliveries were not fenced (gauge is zero)")
	}
}

// TestHTTPTransportEndToEnd runs a worker against the real HTTP
// handler and checks the grid settles.
func TestHTTPTransportEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.WithoutCancel(t.Context()), time.Minute)
	defer cancel()
	tasks := testTasks(t)
	coord, err := NewCoordinator(tasks, nil, Options{LeaseTTL: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(coord))
	defer srv.Close()

	w := NewWorker(&HTTPConn{Base: srv.URL}, WorkerOptions{ID: "http-worker"})
	if err := w.Run(ctx, ctx); err != nil {
		t.Fatal(err)
	}
	if !coord.Done() {
		t.Fatal("grid not settled")
	}
	for i, o := range coord.Outcomes() {
		if o.Err != nil {
			t.Errorf("cell %d: %v", i, o.Err)
		}
	}
}

// TestWorkerDrain: a canceled claim context ends the loop cleanly with
// a goodbye, without touching the run context.
func TestWorkerDrain(t *testing.T) {
	tasks := testTasks(t)
	coord, err := NewCoordinator(tasks, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(coord))
	defer srv.Close()

	runCtx := t.Context()
	claimCtx, drain := context.WithCancel(runCtx)
	drain() // drained before the first claim
	w := NewWorker(&HTTPConn{Base: srv.URL}, WorkerOptions{ID: "drainer"})
	if err := w.Run(runCtx, claimCtx); err != nil {
		t.Fatalf("drained worker: %v", err)
	}
	if coord.Done() {
		t.Fatal("nothing ran, yet the grid settled")
	}
}

// TestHandleProtocolErrors pins the wire behavior for malformed and
// fenced traffic.
func TestHandleProtocolErrors(t *testing.T) {
	coord, err := NewCoordinator(testTasks(t), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp := coord.Handle(Request{Op: "explode"}); resp.Error == "" {
		t.Error("unknown op accepted")
	}
	if resp := coord.Handle(Request{Op: "commit", Worker: "w", Cell: 0, Token: 1}); resp.Error == "" {
		t.Error("commit without result accepted")
	}
	// A commit under a never-issued token is fenced, not an error.
	if resp := coord.Handle(Request{Op: "commit", Worker: "w", Cell: 0, Token: 99, Result: &sim.Result{}}); !resp.Fenced {
		t.Errorf("stale commit response: %+v", resp)
	}
	// Claim/goodbye round-trip.
	resp := coord.Handle(Request{Op: "claim", Worker: "w"})
	if !resp.OK || resp.Task == nil || resp.TTLMillis <= 0 {
		t.Fatalf("claim response: %+v", resp)
	}
	if resp := coord.Handle(Request{Op: "goodbye", Worker: "w"}); !resp.OK {
		t.Errorf("goodbye response: %+v", resp)
	}
}

// TestExpandMatchesSweepGrid: the wire tasks and the in-process cells
// agree on order and fingerprint-relevant fields — the invariant the
// byte-identical merge rests on.
func TestExpandMatchesSweepGrid(t *testing.T) {
	cells, tasks, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 || len(tasks) != 4 {
		t.Fatalf("grid size: %d cells, %d tasks", len(cells), len(tasks))
	}
	for i := range cells {
		if tasks[i].Cell != i {
			t.Errorf("task %d numbered %d", i, tasks[i].Cell)
		}
		if tasks[i].Label != cells[i].Label || tasks[i].Manager != cells[i].Manager || tasks[i].Config != cells[i].Config {
			t.Errorf("task %d diverges from cell: %+v vs %+v", i, tasks[i], cells[i])
		}
		// And the reconstructed cell on the worker side matches again.
		rc, err := tasks[i].MakeCell()
		if err != nil {
			t.Fatal(err)
		}
		if rc.Label != cells[i].Label || rc.Manager != cells[i].Manager || rc.Config != cells[i].Config {
			t.Errorf("reconstructed cell %d diverges: %+v", i, rc)
		}
	}
}
