// Package dist scales sweeps out across processes: a coordinator
// shards a sweep grid into leases recorded in an epoch-fenced
// resume.Ledger, and worker processes pull those leases over NDJSON
// pipes or localhost HTTP, run the cells through the existing
// sweep.RunOpts machinery, and commit results through the shared
// ledger. The design is lease/fence all the way down:
//
//   - Every claim carries a monotonically increasing fencing token.
//     A worker that dies, hangs, or partitions simply stops renewing;
//     after the heartbeat timeout the coordinator expires the lease
//     and hands the cell to another worker under a strictly larger
//     token. If the original worker was merely slow — a zombie — its
//     late commit carries the superseded token and is rejected.
//   - Commits are idempotent: the first delivery settles the cell,
//     duplicates are fenced. The merged grid is therefore
//     byte-identical to a single-process run no matter how many
//     workers died, hung, or double-delivered along the way (cells
//     are deterministic, so every worker computes the same result).
//   - Cells that fail on MaxFailures distinct attempts across workers
//     are quarantined into typed sweep.CellError holes instead of
//     poisoning the grid forever.
//   - The ledger makes the coordinator itself restartable: claims,
//     commits and quarantines are replayed on boot, and writer epochs
//     fence a predecessor coordinator that does not know it is dead.
package dist

import (
	"fmt"

	"compaction/internal/catalog"
	"compaction/internal/sim"
	"compaction/internal/sweep"
)

// Task is one leased unit of work: everything a separate process
// needs to reconstruct and run a sweep cell. Program identity travels
// as the catalog name plus its parameters — the same resolution path
// compactsim's -adversary flag and compactd job specs use — so a
// worker can never drift from what the coordinator fingerprinted.
type Task struct {
	// Cell is the cell's index in the grid.
	Cell int `json:"cell"`
	// Label and Manager mirror the sweep cell.
	Label   string `json:"label"`
	Manager string `json:"manager"`
	// Config is the full model configuration.
	Config sim.Config `json:"config"`
	// Program names the catalog program; Seed, Rounds and Ell are its
	// parameters.
	Program string `json:"program"`
	Seed    int64  `json:"seed"`
	Rounds  int    `json:"rounds"`
	Ell     int    `json:"ell,omitempty"`
}

// MakeCell reconstructs the runnable sweep cell on the worker side.
func (t Task) MakeCell() (sweep.Cell, error) {
	mk, _, err := catalog.New(t.Program, catalog.Params{Seed: t.Seed, Rounds: t.Rounds, Ell: t.Ell})
	if err != nil {
		return sweep.Cell{}, fmt.Errorf("dist: task %d: %w", t.Cell, err)
	}
	// Config (including Pow2Only) comes verbatim from the coordinator:
	// it is part of the cell fingerprint, so recomputing any of it here
	// could only introduce drift.
	return sweep.Cell{Label: t.Label, Config: t.Config, Manager: t.Manager, Program: mk}, nil
}

// GridSpec describes a distributable sweep grid: the same inputs
// compactsim's -sweep mode takes, in serializable form.
type GridSpec struct {
	// Program, Seed, Rounds, Ell identify the program per cell.
	Program string
	Seed    int64
	Rounds  int
	Ell     int
	// M, N, Shards shape the base model configuration.
	M, N   int64
	Shards int
	// Cs are the compaction bounds; Managers the manager names. The
	// grid is their cross product, c-major — exactly sweep.Grid's
	// order, so a distributed run and a single-process run number
	// their cells identically.
	Cs       []int64
	Managers []string
}

// Expand builds the in-process cells and the wire tasks, index-aligned.
func (g GridSpec) Expand() ([]sweep.Cell, []Task, error) {
	mk, pow2, err := catalog.New(g.Program, catalog.Params{Seed: g.Seed, Rounds: g.Rounds, Ell: g.Ell})
	if err != nil {
		return nil, nil, fmt.Errorf("dist: %w", err)
	}
	base := sim.Config{M: g.M, N: g.N, Pow2Only: pow2, Shards: g.Shards}
	cells := sweep.Grid(base, g.Cs, g.Managers, g.Program, mk)
	tasks := make([]Task, len(cells))
	for i, c := range cells {
		tasks[i] = Task{
			Cell: i, Label: c.Label, Manager: c.Manager, Config: c.Config,
			Program: g.Program, Seed: g.Seed, Rounds: g.Rounds, Ell: g.Ell,
		}
	}
	return cells, tasks, nil
}

// Params renders the program-identity string bound into the ledger
// header — the same format compactsim binds into checkpoint journals,
// so the two fault-tolerance paths refuse each other's stale state
// the same way.
func (g GridSpec) Params() string {
	return fmt.Sprintf("adv=%s seed=%d rounds=%d ell=%d", g.Program, g.Seed, g.Rounds, g.Ell)
}
