package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"compaction/internal/resume"
	"compaction/internal/sim"
	"compaction/internal/sweep"
)

// cellState is a cell's position in the lease lifecycle.
type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
	cellQuarantined
)

// leaseInfo is the live lease on a cellLeased cell.
type leaseInfo struct {
	worker  string
	token   uint64
	expires time.Time
}

// Options configures a Coordinator. The zero value selects sane drill
// defaults.
type Options struct {
	// LeaseTTL is the heartbeat timeout: a lease not renewed within it
	// expires and its cell becomes claimable again. Default 10s.
	LeaseTTL time.Duration
	// MaxFailures is the poison-cell threshold: after this many failed
	// attempts across workers the cell is quarantined into a typed
	// hole instead of being leased forever. Default 3.
	MaxFailures int
	// Params is the program-identity string bound into the ledger
	// header (GridSpec.Params for grids built from a spec).
	Params string
	// Monitor, if non-nil, observes progress: cells done/failed,
	// restored from the ledger, workers alive, leases reassigned,
	// commits fenced.
	Monitor *sweep.Monitor
	// Now is the clock seam; nil selects time.Now. Tests drive lease
	// expiry through it deterministically.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 3
	}
	if o.Now == nil {
		// Lease expiry is wall-clock by design: it measures real worker
		// silence, never anything that reaches a result.
		o.Now = time.Now //compactlint:allow determinism lease expiry measures wall-clock worker silence, not simulation state
	}
	return o
}

// Coordinator shards a grid's cells into fenced leases and merges the
// committed results. It is safe for concurrent use by any number of
// transport goroutines.
type Coordinator struct {
	tasks []Task
	fps   []string
	o     Options

	mu       sync.Mutex           //compactlint:lockrank 10
	state    []cellState          //compactlint:guardedby mu
	lease    []leaseInfo          //compactlint:guardedby mu
	results  []sim.Result         //compactlint:guardedby mu
	failN    []int                //compactlint:guardedby mu
	failMsg  []string             //compactlint:guardedby mu
	restored []bool               //compactlint:guardedby mu
	next     uint64               //compactlint:guardedby mu — last issued fencing token
	settled  int                  //compactlint:guardedby mu — cells done or quarantined
	workers  map[string]time.Time //compactlint:guardedby mu
	ledger   *resume.Ledger       //compactlint:guardedby mu
	infraErr error                //compactlint:guardedby mu — first non-fencing ledger failure (degraded mode)
	fenced   bool                 //compactlint:guardedby mu — a newer coordinator epoch owns the ledger

	done   chan struct{} // closed when every cell settled
	failed chan struct{} // closed when the coordinator is fenced
}

// NewCoordinator builds a coordinator over the tasks, bound to the
// ledger (nil disables durability — useful in-process). A non-empty
// ledger must belong to this exact grid; its commits and quarantines
// are adopted so a restarted coordinator resumes where its
// predecessor stopped, and its token high-water mark seeds the
// fencing counter so no new lease reuses an old token.
func NewCoordinator(tasks []Task, ledger *resume.Ledger, o Options) (*Coordinator, error) {
	o = o.withDefaults()
	c := &Coordinator{
		tasks:    tasks,
		fps:      make([]string, len(tasks)),
		o:        o,
		state:    make([]cellState, len(tasks)),
		lease:    make([]leaseInfo, len(tasks)),
		results:  make([]sim.Result, len(tasks)),
		failN:    make([]int, len(tasks)),
		failMsg:  make([]string, len(tasks)),
		restored: make([]bool, len(tasks)),
		workers:  make(map[string]time.Time),
		ledger:   ledger,
		done:     make(chan struct{}),
		failed:   make(chan struct{}),
	}
	for i, t := range tasks {
		c.fps[i] = resume.Fingerprint(resume.CellKey{
			Index: i, Label: t.Label, Manager: t.Manager, Config: t.Config,
		})
	}
	c.o.Monitor.Begin(len(tasks))
	if ledger != nil {
		if err := ledger.Bind(resume.GridFingerprint(c.fps), len(tasks), o.Params); err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		st, err := ledger.Replay()
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		c.next = st.MaxToken
		for cell, rec := range st.Commits {
			if cell < 0 || cell >= len(tasks) || rec.Result == nil || rec.Fingerprint != c.fps[cell] {
				continue
			}
			c.state[cell] = cellDone
			c.results[cell] = *rec.Result
			c.restored[cell] = true
			c.settled++
			c.o.Monitor.CellRestored()
		}
		for cell, reason := range st.Quarantined {
			if cell < 0 || cell >= len(tasks) || c.state[cell] == cellDone {
				continue
			}
			c.state[cell] = cellQuarantined
			c.failN[cell] = o.MaxFailures
			c.failMsg[cell] = reason
			c.settled++
			c.o.Monitor.CellDone(true)
		}
	}
	if c.settled == len(tasks) {
		close(c.done)
	}
	return c, nil
}

// Restored returns how many cells were adopted from the ledger.
func (c *Coordinator) Restored() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.restored {
		if r {
			n++
		}
	}
	return n
}

// Grant is a successful claim: the task, its fencing token, and the
// lease TTL the worker must renew within.
type Grant struct {
	Task  Task
	Token uint64
	TTL   time.Duration
}

// ClaimState classifies a claim attempt.
type ClaimState int

const (
	// ClaimGranted: the grant carries a leased task.
	ClaimGranted ClaimState = iota
	// ClaimEmpty: nothing claimable right now (every unsettled cell is
	// leased); poll again after a backoff.
	ClaimEmpty
	// ClaimDone: every cell is settled; the worker should drain.
	ClaimDone
	// ClaimFailed: the coordinator cannot grant leases (it has been
	// fenced by a successor); the worker should give up on it.
	ClaimFailed
)

// Claim leases the lowest-index claimable cell to the worker. Expired
// leases are reclaimed first, so claims are also the engine that
// detects dead and hung workers: as long as any worker polls, every
// expired lease is reassigned.
func (c *Coordinator) Claim(worker string) (Grant, ClaimState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.o.Now()
	c.touchLocked(worker, now)
	c.expireLocked(now)
	if c.fenced {
		return Grant{}, ClaimFailed
	}
	if c.settled == len(c.tasks) {
		return Grant{}, ClaimDone
	}
	for i, st := range c.state {
		if st != cellPending {
			continue
		}
		c.next++
		token := c.next
		if err := c.appendLocked(resume.LeaseRecord{
			Op: resume.OpClaim, Cell: i, Fingerprint: c.fps[i],
			Worker: worker, Token: token, Attempt: c.failN[i] + 1,
		}); err != nil {
			if c.fenced {
				return Grant{}, ClaimFailed
			}
			// Degraded (ledger write failed, durability lost): keep
			// granting; the error surfaces from Err after the run.
		}
		c.state[i] = cellLeased
		c.lease[i] = leaseInfo{worker: worker, token: token, expires: now.Add(c.o.LeaseTTL)}
		return Grant{Task: c.tasks[i], Token: token, TTL: c.o.LeaseTTL}, ClaimGranted
	}
	return Grant{}, ClaimEmpty
}

// Renew extends the worker's lease. ErrFenced means the lease is no
// longer the worker's — it expired and was (or will be) reassigned —
// and the worker must abandon the cell.
func (c *Coordinator) Renew(worker string, cell int, token uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.o.Now()
	c.touchLocked(worker, now)
	c.expireLocked(now)
	if err := c.checkLeaseLocked(worker, cell, token); err != nil {
		return err
	}
	c.lease[cell].expires = now.Add(c.o.LeaseTTL)
	// Renewals are frequent and carry no state the replay needs (a
	// crashed coordinator re-expires from claim time at worst), so
	// they are journaled only when cheap — currently never — to keep
	// the ledger a record of decisions, not heartbeats.
	return nil
}

// Commit settles a cell with its result. The first valid commit wins;
// a late commit under a superseded token (zombie worker) and any
// duplicate delivery are rejected with ErrFenced and counted in the
// commits_fenced gauge.
func (c *Coordinator) Commit(worker string, cell int, token uint64, res sim.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.o.Now()
	c.touchLocked(worker, now)
	c.expireLocked(now)
	if err := c.checkLeaseLocked(worker, cell, token); err != nil {
		c.o.Monitor.CommitFenced()
		// Audit the rejection; a failure to audit must not fail the
		// rejection.
		_ = c.appendLocked(resume.LeaseRecord{
			Op: resume.OpFence, Cell: cell, Fingerprint: c.fpAt(cell),
			Worker: worker, Token: token, Reason: "stale or duplicate commit",
		})
		return err
	}
	if err := c.appendLocked(resume.LeaseRecord{
		Op: resume.OpCommit, Cell: cell, Fingerprint: c.fps[cell],
		Worker: worker, Token: token, Result: &res,
	}); err != nil && c.fenced {
		// A fenced coordinator must not settle cells: its successor
		// owns the grid now.
		return fmt.Errorf("dist: %w", resume.ErrFenced)
	}
	c.state[cell] = cellDone
	c.results[cell] = res
	c.settled++
	c.o.Monitor.CellDone(false)
	c.o.Monitor.Checkpointed()
	if c.settled == len(c.tasks) {
		close(c.done)
	}
	return nil
}

// Fail reports a failed attempt. The cell goes back to pending for
// another worker — until MaxFailures attempts across workers have
// failed, at which point it is quarantined as a poison cell.
func (c *Coordinator) Fail(worker string, cell int, token uint64, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.o.Now()
	c.touchLocked(worker, now)
	c.expireLocked(now)
	if err := c.checkLeaseLocked(worker, cell, token); err != nil {
		return err
	}
	c.failN[cell]++
	c.failMsg[cell] = reason
	_ = c.appendLocked(resume.LeaseRecord{
		Op: resume.OpFail, Cell: cell, Fingerprint: c.fps[cell],
		Worker: worker, Token: token, Attempt: c.failN[cell], Reason: reason,
	})
	if c.fenced {
		return fmt.Errorf("dist: %w", resume.ErrFenced)
	}
	if c.failN[cell] >= c.o.MaxFailures {
		c.state[cell] = cellQuarantined
		c.settled++
		_ = c.appendLocked(resume.LeaseRecord{
			Op: resume.OpQuarantine, Cell: cell, Fingerprint: c.fps[cell],
			Worker: worker, Token: token, Attempt: c.failN[cell], Reason: reason,
		})
		c.o.Monitor.CellDone(true)
		if c.settled == len(c.tasks) {
			close(c.done)
		}
		return nil
	}
	c.state[cell] = cellPending
	c.o.Monitor.Retried()
	return nil
}

// Release gives a lease back unfinished — the graceful half of a
// worker drain. The cell returns to pending with no failure charged.
func (c *Coordinator) Release(worker string, cell int, token uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.o.Now()
	c.touchLocked(worker, now)
	if err := c.checkLeaseLocked(worker, cell, token); err != nil {
		return err
	}
	_ = c.appendLocked(resume.LeaseRecord{
		Op: resume.OpRelease, Cell: cell, Fingerprint: c.fps[cell],
		Worker: worker, Token: token, Reason: "worker drain",
	})
	c.state[cell] = cellPending
	return nil
}

// Goodbye removes a draining worker from the alive set.
func (c *Coordinator) Goodbye(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.workers, worker)
	c.o.Monitor.WorkersAlive(len(c.workers))
}

// checkLeaseLocked verifies that (worker, cell, token) names the live
// lease. Every mismatch — settled cell, expired-and-reassigned lease,
// wrong worker, superseded token — is a fencing rejection.
//
//compactlint:lockheld mu
func (c *Coordinator) checkLeaseLocked(worker string, cell int, token uint64) error {
	if cell < 0 || cell >= len(c.tasks) {
		return fmt.Errorf("dist: cell %d out of range", cell)
	}
	if c.state[cell] != cellLeased || c.lease[cell].worker != worker || c.lease[cell].token != token {
		return fmt.Errorf("dist: cell %d token %d from %q: %w", cell, token, worker, resume.ErrFenced)
	}
	return nil
}

// fpAt returns the cell fingerprint, tolerating out-of-range indices
// from malformed requests.
func (c *Coordinator) fpAt(cell int) string {
	if cell < 0 || cell >= len(c.fps) {
		return ""
	}
	return c.fps[cell]
}

// touchLocked marks the worker alive.
//
//compactlint:lockheld mu
func (c *Coordinator) touchLocked(worker string, now time.Time) {
	if worker == "" {
		return
	}
	c.workers[worker] = now
	c.o.Monitor.WorkersAlive(len(c.workers))
}

// expireLocked reclaims every expired lease (heartbeat timeout) and
// prunes workers silent for 3×TTL from the alive gauge.
//
//compactlint:lockheld mu
func (c *Coordinator) expireLocked(now time.Time) {
	for i, st := range c.state {
		if st != cellLeased || now.Before(c.lease[i].expires) {
			continue
		}
		_ = c.appendLocked(resume.LeaseRecord{
			Op: resume.OpRelease, Cell: i, Fingerprint: c.fps[i],
			Worker: c.lease[i].worker, Token: c.lease[i].token, Reason: "lease expired",
		})
		c.state[i] = cellPending
		c.o.Monitor.LeaseReassigned()
	}
	cutoff := now.Add(-3 * c.o.LeaseTTL)
	pruned := false
	for w, seen := range c.workers {
		if seen.Before(cutoff) {
			delete(c.workers, w)
			pruned = true
		}
	}
	if pruned {
		c.o.Monitor.WorkersAlive(len(c.workers))
	}
}

// appendLocked writes one ledger record, degrading gracefully: a
// fencing rejection marks the coordinator dead (a successor owns the
// ledger), any other failure disables durability but lets the run
// finish; both surface from Err.
//
//compactlint:lockheld mu
func (c *Coordinator) appendLocked(rec resume.LeaseRecord) error {
	if c.ledger == nil || (c.infraErr != nil && !c.fenced) {
		return nil
	}
	err := c.ledger.Append(rec)
	if err == nil {
		return nil
	}
	if errors.Is(err, resume.ErrFenced) {
		if !c.fenced {
			c.fenced = true
			c.infraErr = fmt.Errorf("dist: coordinator superseded: %w", err)
			close(c.failed)
		}
		return err
	}
	if c.infraErr == nil {
		c.infraErr = fmt.Errorf("dist: ledger disabled: %w", err)
	}
	return err
}

// Err returns the first coordinator-infrastructure error: a fencing
// takeover, or a ledger write failure that degraded durability.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.infraErr
}

// Done reports whether every cell is settled.
func (c *Coordinator) Done() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Wait blocks until every cell is settled, the coordinator is fenced
// by a successor, or ctx is canceled. On normal completion it returns
// Err (nil unless durability degraded mid-run).
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("dist: %w", context.Cause(ctx))
	case <-c.failed:
		return c.Err()
	case <-c.done:
		return c.Err()
	}
}

// Outcomes merges the grid in cell order: committed results,
// quarantined cells as typed FailQuarantined holes, and — for a
// stopped coordinator — unsettled cells as FailSkipped holes. With
// every cell committed the slice is byte-for-byte what a
// single-process sweep.RunOpts would have produced for WriteCSV.
func (c *Coordinator) Outcomes() []sweep.Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	outs := make([]sweep.Outcome, len(c.tasks))
	for i, t := range c.tasks {
		cell := sweep.Cell{Label: t.Label, Config: t.Config, Manager: t.Manager}
		switch c.state[i] {
		case cellDone:
			outs[i] = sweep.Outcome{Cell: cell, Result: c.results[i], Restored: c.restored[i]}
		case cellQuarantined:
			outs[i] = sweep.Outcome{Cell: cell, Err: &sweep.CellError{
				Label: t.Label, Manager: t.Manager, Index: i,
				Attempts: c.failN[i], Kind: sweep.FailQuarantined,
				Err: errors.New(c.failMsg[i]),
			}}
		default:
			outs[i] = sweep.Outcome{Cell: cell, Err: &sweep.CellError{
				Label: t.Label, Manager: t.Manager, Index: i,
				Attempts: c.failN[i], Kind: sweep.FailSkipped,
				Err: errors.New("coordinator stopped before the cell settled"),
			}}
		}
	}
	return outs
}
