package dist

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"compaction/internal/sweep"
)

// Hooks are the worker's fault-injection points, shaped to match
// faultinject.WorkerHooks without importing it. All fields optional.
type Hooks struct {
	// AfterClaim runs once a lease is granted, before the cell runs.
	AfterClaim func(cell int)
	// BeforeCommit runs after the cell succeeded, before the commit is
	// delivered.
	BeforeCommit func(cell int)
	// CommitCopies decides how many times the commit is delivered
	// (nil or < 1 means once).
	CommitCopies func(cell int) int
}

// WorkerOptions configures a worker loop.
type WorkerOptions struct {
	// ID names the worker in leases and the ledger. Required.
	ID string
	// CellTimeout bounds each cell attempt's wall clock (sweep
	// Options.CellTimeout). 0 disables; pair a nonzero value with the
	// coordinator's lease TTL so a wedged cell is abandoned before its
	// lease has long expired.
	CellTimeout time.Duration
	// BackoffBase and BackoffMax shape the claim-poll backoff when the
	// grid has nothing claimable, and the transport-error retry
	// backoff. Defaults: 50ms, 2s.
	BackoffBase, BackoffMax time.Duration
	// MaxErrors is how many consecutive transport or protocol errors
	// the worker tolerates (with backoff) before concluding the
	// coordinator is gone. Default 10.
	MaxErrors int
	// Hooks inject process-level faults for drills and tests.
	Hooks Hooks
	// Logf, if non-nil, receives progress lines (claimed, committed,
	// fenced, draining).
	Logf func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.MaxErrors <= 0 {
		o.MaxErrors = 10
	}
	return o
}

// Worker pulls leases from a coordinator and runs them through the
// sweep machinery, one cell at a time, heartbeating each lease while
// the cell runs.
type Worker struct {
	conn Conn
	o    WorkerOptions
}

// NewWorker builds a worker over the transport.
func NewWorker(conn Conn, o WorkerOptions) *Worker {
	return &Worker{conn: conn, o: o.withDefaults()}
}

// logf emits a progress line when a logger is configured.
func (w *Worker) logf(format string, args ...any) {
	if w.o.Logf != nil {
		w.o.Logf(format, args...)
	}
}

// Run pulls and runs leases until the coordinator reports the grid
// settled, claimCtx is canceled (graceful drain: the in-flight cell
// finishes and commits, then the worker says goodbye), or runCtx is
// canceled (hard stop: the in-flight cell is abandoned and its lease
// released). It returns nil on done/drain, runCtx's cause on a hard
// stop, and an error when the coordinator stays unreachable past the
// retry budget.
func (w *Worker) Run(runCtx, claimCtx context.Context) error {
	errs := 0
	delay := w.o.BackoffBase
	for {
		if runCtx.Err() != nil {
			w.farewell(runCtx)
			return fmt.Errorf("dist: %w", context.Cause(runCtx))
		}
		if claimCtx.Err() != nil {
			w.logf("worker %s: drained", w.o.ID)
			w.farewell(runCtx)
			return nil
		}
		resp, err := w.conn.Call(claimCtx, Request{Op: "claim", Worker: w.o.ID})
		if err != nil || resp.Error != "" {
			if claimCtx.Err() != nil {
				continue // drain or stop raced the call; resolve at the top
			}
			if err == nil {
				err = fmt.Errorf("dist: coordinator refused: %s", resp.Error)
			}
			errs++
			if errs >= w.o.MaxErrors {
				return fmt.Errorf("dist: giving up after %d consecutive claim failures: %w", errs, err)
			}
			delay = w.sleep(runCtx, delay)
			continue
		}
		errs = 0
		if resp.Done {
			w.logf("worker %s: grid settled", w.o.ID)
			w.farewell(runCtx)
			return nil
		}
		if resp.Task == nil {
			// Every unsettled cell is leased elsewhere: poll again after
			// a backoff (the polling also drives coordinator-side lease
			// expiry, so an idle worker is what rescues a hung one).
			delay = w.sleep(runCtx, delay)
			continue
		}
		delay = w.o.BackoffBase
		if err := w.runTask(runCtx, resp); err != nil {
			return err
		}
	}
}

// sleep waits the current backoff (or until runCtx cancels) and
// returns the next, doubled and capped, delay.
func (w *Worker) sleep(runCtx context.Context, delay time.Duration) time.Duration {
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-runCtx.Done():
	case <-t.C:
	}
	delay *= 2
	if delay > w.o.BackoffMax {
		delay = w.o.BackoffMax
	}
	return delay
}

// runTask runs one granted lease to its protocol conclusion: commit,
// fail, release (hard stop), or silent abandonment (lease fenced away
// mid-run). Only a hard stop or a dead coordinator returns an error.
func (w *Worker) runTask(runCtx context.Context, grant Response) error {
	task := *grant.Task
	w.logf("worker %s: claimed cell %d (%s vs %s, token %d)",
		w.o.ID, task.Cell, task.Label, task.Manager, grant.Token)
	if w.o.Hooks.AfterClaim != nil {
		w.o.Hooks.AfterClaim(task.Cell)
	}

	// Heartbeat the lease while the cell runs. A fenced renewal means
	// the lease expired and was reassigned: cancel the attempt and
	// abandon the work (the new holder owns the cell now).
	cellCtx, cancelCell := context.WithCancel(runCtx)
	defer cancelCell()
	var fenced atomic.Bool
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	ttl := time.Duration(grant.TTLMillis) * time.Millisecond
	interval := ttl / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-cellCtx.Done():
				return
			case <-t.C:
				resp, err := w.conn.Call(cellCtx, Request{
					Op: "renew", Worker: w.o.ID, Cell: task.Cell, Token: grant.Token,
				})
				if err == nil && resp.Fenced {
					w.logf("worker %s: lease on cell %d fenced away; abandoning", w.o.ID, task.Cell)
					fenced.Store(true)
					cancelCell()
					return
				}
				// Transport errors here are not fatal: the run continues
				// and the commit (which retries) decides.
			}
		}
	}()

	var out sweep.Outcome
	cell, err := task.MakeCell()
	if err != nil {
		out = sweep.Outcome{Err: err}
	} else {
		outs, _ := sweep.RunOpts(cellCtx, []sweep.Cell{cell}, sweep.Options{
			Parallelism: 1, CellTimeout: w.o.CellTimeout,
		})
		out = outs[0]
	}
	close(hbStop)
	<-hbDone

	switch {
	case fenced.Load():
		return nil
	case runCtx.Err() != nil:
		// Hard stop mid-cell: hand the lease back so the cell is
		// immediately claimable, then report the interruption.
		w.release(runCtx, task, grant.Token)
		return fmt.Errorf("dist: %w", context.Cause(runCtx))
	case out.Err != nil:
		w.logf("worker %s: cell %d failed: %v", w.o.ID, task.Cell, out.Err)
		resp, err := w.conn.Call(runCtx, Request{
			Op: "fail", Worker: w.o.ID, Cell: task.Cell, Token: grant.Token,
			Reason: out.Err.Error(),
		})
		if err == nil && resp.Fenced {
			w.logf("worker %s: failure report for cell %d fenced (lease reassigned)", w.o.ID, task.Cell)
		}
		return nil
	}

	if w.o.Hooks.BeforeCommit != nil {
		w.o.Hooks.BeforeCommit(task.Cell)
	}
	copies := 1
	if w.o.Hooks.CommitCopies != nil {
		if n := w.o.Hooks.CommitCopies(task.Cell); n > copies {
			copies = n
		}
	}
	for i := 0; i < copies; i++ {
		if err := w.commit(runCtx, task, grant.Token, out); err != nil {
			return err
		}
	}
	return nil
}

// commit delivers one commit, retrying transport errors with backoff:
// commits are fenced server-side, so re-delivery is always safe.
func (w *Worker) commit(runCtx context.Context, task Task, token uint64, out sweep.Outcome) error {
	delay := w.o.BackoffBase
	for attempt := 1; ; attempt++ {
		resp, err := w.conn.Call(runCtx, Request{
			Op: "commit", Worker: w.o.ID, Cell: task.Cell, Token: token,
			Result: &out.Result,
		})
		if err != nil {
			if runCtx.Err() != nil {
				return fmt.Errorf("dist: %w", context.Cause(runCtx))
			}
			if attempt >= w.o.MaxErrors {
				return fmt.Errorf("dist: commit for cell %d undeliverable after %d attempts: %w", task.Cell, attempt, err)
			}
			delay = w.sleep(runCtx, delay)
			continue
		}
		if resp.Fenced {
			w.logf("worker %s: commit for cell %d fenced (stale or duplicate)", w.o.ID, task.Cell)
		} else if resp.OK {
			w.logf("worker %s: committed cell %d", w.o.ID, task.Cell)
		}
		return nil
	}
}

// release hands a lease back on a hard stop, best-effort: the calling
// context is already canceled, so the farewell rides a short detached
// deadline. An undeliverable release is fine — the lease expires.
func (w *Worker) release(runCtx context.Context, task Task, token uint64) {
	ctx, cancel := context.WithTimeout(context.WithoutCancel(runCtx), 2*time.Second)
	defer cancel()
	_, _ = w.conn.Call(ctx, Request{Op: "release", Worker: w.o.ID, Cell: task.Cell, Token: token})
}

// farewell tells the coordinator this worker is leaving, best-effort
// and on a short detached deadline (runCtx may already be canceled).
func (w *Worker) farewell(runCtx context.Context) {
	ctx, cancel := context.WithTimeout(context.WithoutCancel(runCtx), 2*time.Second)
	defer cancel()
	_, _ = w.conn.Call(ctx, Request{Op: "goodbye", Worker: w.o.ID})
}
