package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"compaction/internal/resume"
	"compaction/internal/sim"
)

// Request is one worker→coordinator message. The same schema rides
// both transports: one JSON object per line over an NDJSON pipe, or
// the body of POST /v1/lease over localhost HTTP.
type Request struct {
	// Op is the operation: claim, renew, commit, fail, release, goodbye.
	Op     string `json:"op"`
	Worker string `json:"worker"`
	Cell   int    `json:"cell,omitempty"`
	Token  uint64 `json:"token,omitempty"`
	// Result rides commit requests.
	Result *sim.Result `json:"result,omitempty"`
	// Reason rides fail requests (the cell error's text).
	Reason string `json:"reason,omitempty"`
}

// Response is the coordinator's answer.
type Response struct {
	OK bool `json:"ok"`
	// Done: the grid is settled; the worker should say goodbye and
	// exit cleanly.
	Done bool `json:"done,omitempty"`
	// Fenced: the operation was rejected by lease fencing — the lease
	// expired and was reassigned, the token is superseded, or the
	// commit is a duplicate. The worker drops the work and moves on.
	Fenced bool `json:"fenced,omitempty"`
	// Task, Token and TTLMillis carry a granted lease.
	Task      *Task  `json:"task,omitempty"`
	Token     uint64 `json:"token,omitempty"`
	TTLMillis int64  `json:"ttl_ms,omitempty"`
	// Error reports a coordinator-side problem (unknown op, fenced
	// coordinator). Transport-level retries apply; fencing does not.
	Error string `json:"error,omitempty"`
}

// Handle dispatches one protocol request against the coordinator. It
// is the single entry point both transports go through.
func (c *Coordinator) Handle(req Request) Response {
	switch req.Op {
	case "claim":
		g, st := c.Claim(req.Worker)
		switch st {
		case ClaimGranted:
			t := g.Task
			return Response{OK: true, Task: &t, Token: g.Token, TTLMillis: g.TTL.Milliseconds()}
		case ClaimEmpty:
			return Response{OK: true}
		case ClaimDone:
			return Response{OK: true, Done: true}
		default:
			return Response{Error: "coordinator fenced by a successor"}
		}
	case "renew":
		return respond(c.Renew(req.Worker, req.Cell, req.Token))
	case "commit":
		if req.Result == nil {
			return Response{Error: "commit without a result"}
		}
		return respond(c.Commit(req.Worker, req.Cell, req.Token, *req.Result))
	case "fail":
		return respond(c.Fail(req.Worker, req.Cell, req.Token, req.Reason))
	case "release":
		return respond(c.Release(req.Worker, req.Cell, req.Token))
	case "goodbye":
		c.Goodbye(req.Worker)
		return Response{OK: true}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// respond maps a coordinator error to the wire: fencing rejections are
// a dedicated flag (expected protocol traffic, not failures).
func respond(err error) Response {
	switch {
	case err == nil:
		return Response{OK: true}
	case errors.Is(err, resume.ErrFenced):
		return Response{Fenced: true}
	default:
		return Response{Error: err.Error()}
	}
}

// Conn is the worker's view of a coordinator, over any transport.
type Conn interface {
	Call(ctx context.Context, req Request) (Response, error)
}

// leasePath is the HTTP endpoint both sides agree on.
const leasePath = "/v1/lease"

// Handler serves the lease protocol over HTTP: POST /v1/lease with a
// Request body returns a Response.
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+leasePath, func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(c.Handle(req)); err != nil {
			// The client went away mid-response; its retry (or lease
			// expiry) recovers.
			return
		}
	})
	return mux
}

// Serve runs the lease protocol on the listener until the returned
// server is shut down.
func Serve(c *Coordinator, l net.Listener) *http.Server {
	srv := &http.Server{Handler: Handler(c), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// Serve's error is ErrServerClosed on Shutdown; anything else
		// means the listener died, which the coordinator's Wait caller
		// notices by workers going silent.
		_ = srv.Serve(l)
	}()
	return srv
}

// HTTPConn is the worker-side HTTP transport.
type HTTPConn struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:7171".
	Base string
	// Client, if nil, uses a dedicated client with sane timeouts.
	Client *http.Client
}

// Call implements Conn.
func (h *HTTPConn) Call(ctx context.Context, req Request) (Response, error) {
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return Response{}, fmt.Errorf("dist: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.Base+leasePath, bytes.NewReader(body))
	if err != nil {
		return Response{}, fmt.Errorf("dist: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := client.Do(hreq)
	if err != nil {
		return Response{}, fmt.Errorf("dist: %w", err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(hres.Body, 1<<10))
		return Response{}, fmt.Errorf("dist: coordinator returned %s: %s", hres.Status, bytes.TrimSpace(b))
	}
	var resp Response
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("dist: %w", err)
	}
	return resp, nil
}

// ServeLines runs the lease protocol over an NDJSON pipe: one Request
// per line on r, one Response per line on w — the transport for
// workers wired up over stdin/stdout instead of a socket. It returns
// when r is exhausted (the worker hung up) or w fails.
func ServeLines(c *Coordinator, r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	enc := json.NewEncoder(w)
	for sc.Scan() {
		var req Request
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			resp = Response{Error: "bad request: " + err.Error()}
		} else {
			resp = c.Handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("dist: %w", err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	return nil
}

// LineConn is the worker-side NDJSON pipe transport: requests written
// to w, responses read from r, strictly one in flight at a time.
type LineConn struct {
	mu  sync.Mutex     //compactlint:lockrank 20
	enc *json.Encoder  //compactlint:guardedby mu
	sc  *bufio.Scanner //compactlint:guardedby mu
}

// NewLineConn builds a LineConn over the pipe pair.
func NewLineConn(r io.Reader, w io.Writer) *LineConn {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &LineConn{enc: json.NewEncoder(w), sc: sc}
}

// Call implements Conn. Pipes carry no per-call cancellation; ctx is
// honored between calls.
func (l *LineConn) Call(ctx context.Context, req Request) (Response, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return Response{}, fmt.Errorf("dist: %w", err)
	}
	if err := l.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("dist: %w", err)
	}
	if !l.sc.Scan() {
		if err := l.sc.Err(); err != nil {
			return Response{}, fmt.Errorf("dist: %w", err)
		}
		return Response{}, fmt.Errorf("dist: coordinator pipe closed")
	}
	var resp Response
	if err := json.Unmarshal(l.sc.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("dist: %w", err)
	}
	return resp, nil
}
