package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"compaction/internal/faultinject"
)

// Exit codes shared with compactsim: 0 success/drained, 1 error,
// 2 usage, 3 interrupted (hard stop before the grid settled).
const (
	ExitOK          = 0
	ExitError       = 1
	ExitUsage       = 2
	ExitInterrupted = 3
)

// CLIConfig configures a worker process frontend.
type CLIConfig struct {
	// URL is the coordinator address: an http://host:port base, or "-"
	// to speak NDJSON over stdin/stdout.
	URL string
	// ID names the worker; defaults to "worker-<pid>".
	ID string
	// CellTimeout bounds each cell attempt (0 = none).
	CellTimeout time.Duration
	// Inject is a faultinject.ParseWorkerFault spec ("" = no fault).
	Inject string
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
	// Stdin/Stdout back the "-" transport; default os.Stdin/os.Stdout.
	Stdin  io.Reader
	Stdout io.Writer
}

// RunWorkerCLI is the whole worker frontend: transport setup, fault
// injection, the two-stage signal drain, and exit-code mapping. The
// first SIGTERM/SIGINT stops claiming new leases and lets the
// in-flight cell finish and commit (graceful drain, exit 0); the
// second abandons the cell, releases its lease, and exits 3.
func RunWorkerCLI(ctx context.Context, cfg CLIConfig) int {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.URL == "" {
		fmt.Fprintln(os.Stderr, "worker: a coordinator address is required (-coordinator URL, or - for stdio)")
		return ExitUsage
	}
	id := cfg.ID
	if id == "" {
		id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	hooks, err := faultinject.ParseWorkerFault(cfg.Inject)
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		return ExitUsage
	}

	var conn Conn
	if cfg.URL == "-" {
		in, out := cfg.Stdin, cfg.Stdout
		if in == nil {
			in = os.Stdin
		}
		if out == nil {
			out = os.Stdout
		}
		conn = NewLineConn(in, out)
	} else {
		conn = &HTTPConn{Base: cfg.URL}
	}

	runCtx, hardStop := context.WithCancel(ctx)
	defer hardStop()
	claimCtx, drain := context.WithCancel(runCtx)
	defer drain()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	go func() {
		select {
		case <-sigc:
			logf("worker %s: draining (finishing the in-flight cell; signal again to abandon it)", id)
			drain()
		case <-runCtx.Done():
			return
		}
		select {
		case <-sigc:
			logf("worker %s: hard stop", id)
			hardStop()
		case <-runCtx.Done():
		}
	}()

	w := NewWorker(conn, WorkerOptions{
		ID:          id,
		CellTimeout: cfg.CellTimeout,
		Hooks: Hooks{
			AfterClaim:   hooks.AfterClaim,
			BeforeCommit: hooks.BeforeCommit,
			CommitCopies: hooks.CommitCopies,
		},
		Logf: logf,
	})
	err = w.Run(runCtx, claimCtx)
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "worker: interrupted:", err)
		return ExitInterrupted
	default:
		fmt.Fprintln(os.Stderr, "worker:", err)
		return ExitError
	}
}
