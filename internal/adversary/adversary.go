// Package adversary provides the shared machinery of the "bad
// programs" — the adversarial allocation/de-allocation sequences that
// force memory managers to waste space. Subpackages implement the
// concrete adversaries:
//
//	adversary/robson  Robson's classical program P_R (JACM 1971/74)
//	adversary/pw      the Bendersky–Petrank program P_W (POPL 2011),
//	                  reconstructed
//
// The paper's own adversary P_F builds on the same notions and lives
// in internal/core (it is the primary contribution).
package adversary

import (
	"compaction/internal/heap"
	"compaction/internal/word"
)

// Occupying reports whether an object placed at span s is
// "f-occupying with respect to chunks of size align" (Definition 4.2
// of the paper): it occupies a word at some address k·align + f.
func Occupying(s heap.Span, f word.Addr, align word.Size) bool {
	if s.Empty() {
		return false
	}
	// The occupied offsets within a chunk form the window
	// [s.Addr mod align, s.Addr mod align + s.Size) taken cyclically.
	// If the object is at least one chunk long it hits every offset.
	if s.Size >= align {
		return true
	}
	r := (f - s.Addr) % align
	if r < 0 {
		r += align
	}
	return r < s.Size
}

// OccupyingWord returns the lowest address of the form k·align + f
// occupied by the object at span s. It panics if the object is not
// f-occupying; callers check with Occupying first.
func OccupyingWord(s heap.Span, f word.Addr, align word.Size) word.Addr {
	if !Occupying(s, f, align) {
		panic("adversary: OccupyingWord on non-occupying object")
	}
	r := (f - s.Addr) % align
	if r < 0 {
		r += align
	}
	w := s.Addr + r
	if w >= s.End() {
		panic("adversary: occupying-word computation out of range")
	}
	return w
}

// Tracked is an object record the adversaries keep: identity, size and
// the address it had when allocated (ghosts keep their allocation-time
// address per Definition 4.1).
type Tracked struct {
	ID    heap.ObjectID
	Span  heap.Span
	Ghost bool // freed after a compaction but still counted by the program
}

// WastePerOffset computes Σ (2^step − |o|) over the f-occupying
// objects among objs, the quantity Robson's offset choice maximizes
// (line 4 of Algorithm 2, line 5 of Algorithm 1).
func WastePerOffset(objs []Tracked, f word.Addr, align word.Size) word.Size {
	var sum word.Size
	for _, o := range objs {
		if Occupying(o.Span, f, align) {
			sum += align - o.Span.Size
		}
	}
	return sum
}

// ChooseOffset implements the offset update rule: given the previous
// offset fPrev for chunks of size align/2, pick f ∈ {fPrev,
// fPrev + align/2} maximizing WastePerOffset for chunks of size align.
// Ties keep fPrev, which makes runs deterministic.
func ChooseOffset(objs []Tracked, fPrev word.Addr, align word.Size) word.Addr {
	alt := fPrev + align/2
	if WastePerOffset(objs, alt, align) > WastePerOffset(objs, fPrev, align) {
		return alt
	}
	return fPrev
}
