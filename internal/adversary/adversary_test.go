package adversary

import (
	"testing"
	"testing/quick"

	"compaction/internal/heap"
	"compaction/internal/word"
)

func TestOccupying(t *testing.T) {
	cases := []struct {
		s     heap.Span
		f     word.Addr
		align word.Size
		want  bool
	}{
		// Chunk size 8, offset 3: occupied words are 3, 11, 19, ...
		{heap.Span{Addr: 0, Size: 4}, 3, 8, true},   // covers word 3
		{heap.Span{Addr: 0, Size: 3}, 3, 8, false},  // [0,3) misses 3
		{heap.Span{Addr: 4, Size: 4}, 3, 8, false},  // [4,8) misses 3, 11
		{heap.Span{Addr: 10, Size: 2}, 3, 8, true},  // covers 11
		{heap.Span{Addr: 12, Size: 8}, 3, 8, true},  // size = align always occupies
		{heap.Span{Addr: 12, Size: 20}, 3, 8, true}, // larger than align
		{heap.Span{Addr: 3, Size: 1}, 3, 8, true},   // exactly the word
		{heap.Span{Addr: 19, Size: 1}, 3, 8, true},  // word 19 = 2·8+3
		{heap.Span{Addr: 20, Size: 7}, 3, 8, false}, // [20,27) misses 19, 27
	}
	for _, c := range cases {
		if got := Occupying(c.s, c.f, c.align); got != c.want {
			t.Errorf("Occupying(%v, f=%d, align=%d) = %v, want %v", c.s, c.f, c.align, got, c.want)
		}
	}
}

func TestOccupyingWord(t *testing.T) {
	cases := []struct {
		s     heap.Span
		f     word.Addr
		align word.Size
		want  word.Addr
	}{
		{heap.Span{Addr: 0, Size: 4}, 3, 8, 3},
		{heap.Span{Addr: 10, Size: 2}, 3, 8, 11},
		{heap.Span{Addr: 12, Size: 8}, 3, 8, 19},
		{heap.Span{Addr: 3, Size: 1}, 3, 8, 3},
	}
	for _, c := range cases {
		if got := OccupyingWord(c.s, c.f, c.align); got != c.want {
			t.Errorf("OccupyingWord(%v, f=%d, align=%d) = %d, want %d", c.s, c.f, c.align, got, c.want)
		}
	}
}

func TestOccupyingWordPanicsWhenNotOccupying(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-occupying object")
		}
	}()
	OccupyingWord(heap.Span{Addr: 0, Size: 3}, 3, 8)
}

// Property: Occupying agrees with a brute-force word scan.
func TestOccupyingProperty(t *testing.T) {
	f := func(addrRaw, sizeRaw, fRaw uint16, alignExp uint8) bool {
		align := word.Pow2(int(alignExp%6) + 1) // 2..64
		s := heap.Span{Addr: int64(addrRaw % 1024), Size: int64(sizeRaw%64) + 1}
		off := int64(fRaw) % align
		want := false
		for a := s.Addr; a < s.End(); a++ {
			if a%align == off {
				want = true
				break
			}
		}
		got := Occupying(s, off, align)
		if got != want {
			return false
		}
		if got {
			w := OccupyingWord(s, off, align)
			if w < s.Addr || w >= s.End() || w%align != off {
				return false
			}
			// Must be the lowest such word.
			for a := s.Addr; a < w; a++ {
				if a%align == off {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestFigure5OffsetChoice mirrors the paper's Figure 5 situation: at a
// step change the adversary picks whichever of the two candidate
// offsets traps more wasted space, and objects missing the chosen
// offset (like O3 in the figure) are freed.
func TestFigure5OffsetChoice(t *testing.T) {
	// Chunks of size 4 (step 2), previous offset 0. Candidates: 0, 2.
	objs := []Tracked{
		{ID: 1, Span: heap.Span{Addr: 0, Size: 1}},  // occupies offset 0
		{ID: 2, Span: heap.Span{Addr: 6, Size: 1}},  // occupies offset 2
		{ID: 3, Span: heap.Span{Addr: 10, Size: 1}}, // occupies offset 2
	}
	got := ChooseOffset(objs, 0, 4)
	if got != 2 {
		t.Fatalf("ChooseOffset = %d, want 2 (two trapped objects beat one)", got)
	}
	// Waste accounting: each unit object traps 4−1 = 3 words.
	if w := WastePerOffset(objs, 2, 4); w != 6 {
		t.Fatalf("WastePerOffset(f=2) = %d, want 6", w)
	}
	if w := WastePerOffset(objs, 0, 4); w != 3 {
		t.Fatalf("WastePerOffset(f=0) = %d, want 3", w)
	}
}

func TestChooseOffsetTieKeepsPrevious(t *testing.T) {
	objs := []Tracked{
		{ID: 1, Span: heap.Span{Addr: 0, Size: 1}}, // offset 0
		{ID: 2, Span: heap.Span{Addr: 2, Size: 1}}, // offset 2
	}
	if got := ChooseOffset(objs, 0, 4); got != 0 {
		t.Fatalf("tie should keep previous offset, got %d", got)
	}
}

func TestWastePerOffsetCountsBigObjectsOnce(t *testing.T) {
	// An object of exactly chunk size occupies every offset and traps
	// zero waste.
	objs := []Tracked{{ID: 1, Span: heap.Span{Addr: 5, Size: 8}}}
	if w := WastePerOffset(objs, 3, 8); w != 0 {
		t.Fatalf("waste = %d, want 0", w)
	}
}
