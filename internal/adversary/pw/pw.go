// Package pw implements a reconstruction of P_W, the bad program of
// Bendersky & Petrank (POPL 2011) quoted in Section 2.2 of Cohen &
// Petrank (PLDI 2013). Only its bound is stated there, so this is a
// documented reconstruction (DESIGN.md §5): a Robson-style offset
// adversary whose step sizes grow by a factor b ≈ c instead of 2.
// With chunks growing that fast, each surviving object holds roughly a
// 1/c fraction of its chunk — exactly the density at which evacuating
// the chunk stops being profitable for a c-partial manager — but the
// number of steps shrinks from log2(n) to log_c(n), which is why the
// resulting bound (bounds.BPLower) is so much weaker than Theorem 1.
//
// Objects the manager moves are freed immediately, as in P_F, so the
// program never benefits from compaction.
package pw

import (
	"sort"

	"compaction/internal/adversary"
	"compaction/internal/heap"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// Program is the reconstructed P_W adversary.
type Program struct {
	step  int
	b     word.Size // step growth factor (power of two, ≈ c)
	align word.Size // current chunk size b^step
	f     word.Addr
	objs  map[heap.ObjectID]heap.Span
	done  bool
}

var _ sim.Program = (*Program)(nil)

// New returns a P_W adversary; the growth factor is derived from the
// engine config at the first step.
func New() *Program { return &Program{} }

// Name implements sim.Program.
func (p *Program) Name() string { return "pw" }

// Step implements sim.Program.
func (p *Program) Step(v *sim.View) ([]heap.ObjectID, []word.Size, bool) {
	if p.objs == nil {
		p.objs = make(map[heap.ObjectID]heap.Span)
		b := word.Size(2)
		if v.Config.C >= 2 {
			b = word.RoundUpPow2(word.Size(v.Config.C))
		}
		p.b = b
		p.align = 1
	}
	defer func() { p.step++ }()
	if p.step == 0 {
		p.f = 0
		allocs := make([]word.Size, v.Config.M)
		for i := range allocs {
			allocs[i] = 1
		}
		return nil, allocs, false
	}
	// Grow the chunk size by b; stop once it would exceed n.
	next := p.align * p.b
	if next > v.Config.N {
		p.done = true
		return nil, nil, true
	}
	prevAlign := p.align
	p.align = next

	tracked := p.trackedObjects()
	// Choose the offset among {f + k·prevAlign} maximizing waste.
	best, bestWaste := p.f, word.Size(-1)
	for k := word.Size(0); k*prevAlign < p.align; k++ {
		cand := p.f + k*prevAlign
		w := adversary.WastePerOffset(tracked, cand, p.align)
		if w > bestWaste {
			best, bestWaste = cand, w
		}
	}
	p.f = best

	var frees []heap.ObjectID
	var liveWords word.Size
	for _, o := range tracked {
		if adversary.Occupying(o.Span, p.f, p.align) {
			liveWords += o.Span.Size
		} else {
			frees = append(frees, o.ID)
			delete(p.objs, o.ID)
		}
	}
	count := (v.Config.M - liveWords) / p.align
	allocs := make([]word.Size, count)
	for i := range allocs {
		allocs[i] = p.align
	}
	return frees, allocs, false
}

func (p *Program) trackedObjects() []adversary.Tracked {
	out := make([]adversary.Tracked, 0, len(p.objs))
	for id, s := range p.objs {
		out = append(out, adversary.Tracked{ID: id, Span: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Span.Addr < out[j].Span.Addr })
	return out
}

// Placed implements sim.Program.
func (p *Program) Placed(id heap.ObjectID, s heap.Span) {
	p.objs[id] = s
}

// Moved implements sim.Program: moved objects are freed immediately.
func (p *Program) Moved(id heap.ObjectID, _, _ heap.Span) bool {
	delete(p.objs, id)
	return true
}
