package pw

import (
	"testing"

	"compaction/internal/bounds"
	"compaction/internal/budget"
	"compaction/internal/core"
	"compaction/internal/mm"
	"compaction/internal/sim"

	_ "compaction/internal/mm/bpcompact"
	_ "compaction/internal/mm/fits"
	_ "compaction/internal/mm/threshold"
)

func runPW(t *testing.T, mgrName string, cfg sim.Config) sim.Result {
	t.Helper()
	mgr, err := mm.New(mgrName)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(cfg, New(), mgr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("P_W vs %s failed: %v", mgrName, err)
	}
	return res
}

func TestPWRunsAgainstManagers(t *testing.T) {
	cfg := sim.Config{M: 1 << 14, N: 1 << 8, C: 8, Pow2Only: true}
	for _, name := range []string{"first-fit", "best-fit", "bp-compact", "threshold"} {
		res := runPW(t, name, cfg)
		if res.Allocs == 0 {
			t.Errorf("%s: no allocations", name)
		}
		if res.WasteFactor() < 1 {
			t.Errorf("%s: waste %.3f < 1", name, res.WasteFactor())
		}
		t.Logf("%s: HS=%.3f·M", name, res.WasteFactor())
	}
}

// TestPWWeakerThanPF demonstrates the paper's point: against the same
// compacting manager, the old adversary extracts (much) less
// fragmentation than P_F does.
func TestPWWeakerThanPF(t *testing.T) {
	cfg := sim.Config{M: 1 << 16, N: 1 << 8, C: 16, Pow2Only: true}
	pwRes := runPW(t, "threshold", cfg)

	mgr, err := mm.New("threshold")
	if err != nil {
		t.Fatal(err)
	}
	pf := core.NewPF(core.Options{})
	e, err := sim.NewEngine(cfg, pf, mgr)
	if err != nil {
		t.Fatal(err)
	}
	pfRes, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("P_W: %.3f·M, P_F: %.3f·M", pwRes.WasteFactor(), pfRes.WasteFactor())
	if pwRes.WasteFactor() >= pfRes.WasteFactor() {
		t.Errorf("P_W (%.3f·M) should fragment less than P_F (%.3f·M) against a compactor",
			pwRes.WasteFactor(), pfRes.WasteFactor())
	}
}

// TestPWNonMoving: without compaction P_W still fragments (it is a
// Robson-style program), though with fewer steps than P_R.
func TestPWNonMoving(t *testing.T) {
	cfg := sim.Config{M: 1 << 12, N: 1 << 8, C: budget.NoCompaction, Pow2Only: true}
	res := runPW(t, "first-fit", cfg)
	if res.WasteFactor() < 1.2 {
		t.Errorf("P_W extracted only %.3f·M from first-fit", res.WasteFactor())
	}
}

// TestPWAboveBPLowerFormula: the reconstruction should at least force
// the (weak) BP 2011 closed-form bound at compatible parameters.
func TestPWAboveBPLowerFormula(t *testing.T) {
	cfg := sim.Config{M: 1 << 16, N: 1 << 8, C: 16, Pow2Only: true}
	res := runPW(t, "bp-compact", cfg)
	v := bounds.BPLower(bounds.Params{M: cfg.M, N: cfg.N, C: cfg.C})
	if res.WasteFactor() < v {
		t.Errorf("P_W forced %.3f·M, below BP formula %.3f·M", res.WasteFactor(), v)
	}
}
