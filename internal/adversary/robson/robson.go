// Package robson implements Robson's classical bad program P_R
// (Algorithm 2 of Cohen & Petrank 2013, after Robson, JACM 1971/74):
// the adversary that forces every compaction-free memory manager on
// P2(M, n) programs to use a heap of at least
//
//	M·(½·log2(n) + 1) − n + 1
//
// words. It works in steps i = 0..log2(n): step 0 fills the heap with
// M unit objects; step i picks the offset f_i ∈ {f_{i−1},
// f_{i−1}+2^{i−1}} that maximizes the wasted space Σ(2^i − |o|) over
// f_i-occupying objects, frees every non-occupying object, and
// allocates as many 2^i-sized objects as the M-bound allows.
//
// Against a manager that does move objects, this standalone P_R simply
// tracks the new addresses (the ghost-object machinery that preserves
// Robson's guarantees under compaction belongs to P_F's first stage in
// internal/core).
package robson

import (
	"fmt"
	"sort"

	"compaction/internal/adversary"
	"compaction/internal/heap"
	"compaction/internal/sim"
	"compaction/internal/word"
)

// Program is Robson's adversary.
type Program struct {
	steps int // last step index; sizes reach 2^steps
	f     word.Addr
	step  int
	objs  map[heap.ObjectID]heap.Span
}

var _ sim.Program = (*Program)(nil)

// New returns P_R running steps 0..steps. If steps <= 0, the run is
// sized at Reset time from the engine config (steps = log2 n).
func New(steps int) *Program {
	return &Program{steps: steps}
}

// Name implements sim.Program.
func (p *Program) Name() string { return "robson" }

// Step implements sim.Program.
func (p *Program) Step(v *sim.View) ([]heap.ObjectID, []word.Size, bool) {
	if p.objs == nil {
		p.objs = make(map[heap.ObjectID]heap.Span)
	}
	steps := p.steps
	if steps <= 0 {
		steps = word.Log2(v.Config.N)
	}
	defer func() { p.step++ }()
	switch {
	case p.step == 0:
		p.f = 0
		allocs := make([]word.Size, v.Config.M)
		for i := range allocs {
			allocs[i] = 1
		}
		return nil, allocs, false
	case p.step <= steps:
		i := p.step
		align := word.Pow2(i)
		tracked := p.tracked()
		p.f = adversary.ChooseOffset(tracked, p.f, align)
		var frees []heap.ObjectID
		var liveWords word.Size
		for _, o := range tracked {
			if adversary.Occupying(o.Span, p.f, align) {
				liveWords += o.Span.Size
			} else {
				frees = append(frees, o.ID)
				delete(p.objs, o.ID)
			}
		}
		count := (v.Config.M - liveWords) / align
		allocs := make([]word.Size, count)
		for k := range allocs {
			allocs[k] = align
		}
		return frees, allocs, p.step == steps
	default:
		return nil, nil, true
	}
}

// tracked returns the live objects in deterministic (address) order.
func (p *Program) tracked() []adversary.Tracked {
	out := make([]adversary.Tracked, 0, len(p.objs))
	for id, s := range p.objs {
		out = append(out, adversary.Tracked{ID: id, Span: s})
	}
	// Address order for determinism of free sequences.
	sort.Slice(out, func(i, j int) bool { return out[i].Span.Addr < out[j].Span.Addr })
	return out
}

// Placed implements sim.Program.
func (p *Program) Placed(id heap.ObjectID, s heap.Span) {
	if p.objs == nil {
		p.objs = make(map[heap.ObjectID]heap.Span)
	}
	p.objs[id] = s
}

// Moved implements sim.Program: the standalone Robson program keeps
// moved objects and tracks their new location.
func (p *Program) Moved(id heap.ObjectID, _, to heap.Span) bool {
	p.objs[id] = to
	return false
}

// Offset exposes the current offset f_i for tests.
func (p *Program) Offset() word.Addr { return p.f }

// LowerBoundWords is Robson's tight lower bound on the heap any
// non-moving manager needs against P_R: M(½·log2 n + 1) − n + 1.
func LowerBoundWords(m, n word.Size) word.Size {
	L := word.Size(word.Log2(n))
	return m*(L+2)/2 - n + 1
}

// String describes the program configuration.
func (p *Program) String() string {
	return fmt.Sprintf("robson{steps=%d}", p.steps)
}
