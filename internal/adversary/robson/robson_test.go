package robson

import (
	"fmt"
	"testing"

	"compaction/internal/budget"
	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/word"

	_ "compaction/internal/mm/bitmapff"
	_ "compaction/internal/mm/bpcompact"
	_ "compaction/internal/mm/buddy"
	_ "compaction/internal/mm/fits"
	_ "compaction/internal/mm/halffit"
	_ "compaction/internal/mm/improved"
	_ "compaction/internal/mm/markcompact"
	_ "compaction/internal/mm/rounding"
	_ "compaction/internal/mm/segregated"
	_ "compaction/internal/mm/threshold"
	_ "compaction/internal/mm/tlsf"
)

// nonMoving lists the compaction-free managers Robson's bound covers.
var nonMoving = []string{
	"first-fit", "best-fit", "next-fit", "worst-fit",
	"aligned-first-fit", "buddy", "segregated", "tlsf",
	"bitmap-first-fit", "rounded-segregated", "half-fit",
}

// TestRobsonLowerBoundAgainstNonMovingManagers is Sim-2 of DESIGN.md:
// every compaction-free manager must use at least
// M(½·log2 n + 1) − n + 1 words against P_R.
func TestRobsonLowerBoundAgainstNonMovingManagers(t *testing.T) {
	cfg := sim.Config{M: 1 << 12, N: 1 << 6, C: budget.NoCompaction, Pow2Only: true}
	bound := LowerBoundWords(cfg.M, cfg.N)
	if bound != 4096*4-64+1 {
		t.Fatalf("bound arithmetic: %d", bound)
	}
	for _, name := range nonMoving {
		name := name
		t.Run(name, func(t *testing.T) {
			mgr, err := mm.New(name)
			if err != nil {
				t.Fatal(err)
			}
			e, err := sim.NewEngine(cfg, New(0), mgr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			t.Logf("%s: HS=%d bound=%d (%.3f·M vs %.3f·M)",
				name, res.HighWater, bound, res.WasteFactor(), float64(bound)/float64(cfg.M))
			if res.HighWater < bound {
				t.Errorf("%s beat Robson's bound: HS=%d < %d", name, res.HighWater, bound)
			}
		})
	}
}

// TestRobsonAcrossParameters sweeps (M, n).
func TestRobsonAcrossParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	for _, mexp := range []int{10, 12, 14} {
		for _, nexp := range []int{4, 6, 8} {
			if nexp >= mexp-2 {
				continue
			}
			cfg := sim.Config{M: word.Pow2(mexp), N: word.Pow2(nexp),
				C: budget.NoCompaction, Pow2Only: true}
			t.Run(fmt.Sprintf("M=2^%d,n=2^%d", mexp, nexp), func(t *testing.T) {
				mgr, err := mm.New("best-fit")
				if err != nil {
					t.Fatal(err)
				}
				e, err := sim.NewEngine(cfg, New(0), mgr)
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.HighWater < LowerBoundWords(cfg.M, cfg.N) {
					t.Errorf("HS=%d below bound %d", res.HighWater, LowerBoundWords(cfg.M, cfg.N))
				}
			})
		}
	}
}

// TestRobsonCompactionNeutralizes: with unlimited compaction the
// manager escapes Robson's bound entirely — fragmentation is the
// product of NOT moving.
func TestRobsonCompactionNeutralizes(t *testing.T) {
	cfg := sim.Config{M: 1 << 12, N: 1 << 6, C: 0, Pow2Only: true}
	mgr, err := mm.New("bp-compact")
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(cfg, New(0), mgr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	bound := LowerBoundWords(cfg.M, cfg.N)
	if res.HighWater >= bound {
		t.Errorf("unlimited compactor should beat Robson's bound: HS=%d, bound=%d",
			res.HighWater, bound)
	}
	// In fact it should stay close to M.
	if res.WasteFactor() > 1.6 {
		t.Errorf("unlimited compactor wasted %.2f·M against P_R", res.WasteFactor())
	}
}

func TestRobsonStepsParameter(t *testing.T) {
	cfg := sim.Config{M: 1 << 10, N: 1 << 6, C: budget.NoCompaction, Pow2Only: true}
	mgr, err := mm.New("first-fit")
	if err != nil {
		t.Fatal(err)
	}
	p := New(3) // stop after sizes reach 2^3
	e, err := sim.NewEngine(cfg, p, mgr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 { // steps 0..3
		t.Errorf("rounds = %d, want 4", res.Rounds)
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestLowerBoundWordsFormula(t *testing.T) {
	// M=2^20, n=2^10: M(5+1)−n+1.
	if got, want := LowerBoundWords(1<<20, 1<<10), int64(6*(1<<20)-(1<<10)+1); got != want {
		t.Errorf("LowerBoundWords = %d, want %d", got, want)
	}
}

// TestRobsonBoundIsTightEmpirically: Robson's result is an equality —
// his allocator meets the bound his program forces. Our P_R against
// the sequential-fit policies lands essentially ON the bound, which
// both confirms the program extracts everything available and shows
// the classical allocators are already worst-case optimal here.
func TestRobsonBoundIsTightEmpirically(t *testing.T) {
	cfg := sim.Config{M: 1 << 14, N: 1 << 7, C: budget.NoCompaction, Pow2Only: true}
	bound := LowerBoundWords(cfg.M, cfg.N)
	for _, name := range []string{"first-fit", "best-fit"} {
		mgr, err := mm.New(name)
		if err != nil {
			t.Fatal(err)
		}
		e, err := sim.NewEngine(cfg, New(0), mgr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		slack := float64(res.HighWater) / float64(bound)
		if slack > 1.02 {
			t.Errorf("%s: HS=%d is %.4fx the tight bound %d", name, res.HighWater, slack, bound)
		}
	}
}
