package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sample() Figure {
	return Figure{
		Title:  "test figure",
		XLabel: "c",
		YLabel: "h",
		Series: []Series{
			{Name: "alpha", X: []float64{10, 20, 30}, Y: []float64{1, 2, 3}},
			{Name: "beta", X: []float64{10, 20, 40}, Y: []float64{3, 2, 1}},
		},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "c,alpha,beta" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 5 { // union of x = {10,20,30,40}
		t.Fatalf("rows = %d, want 5:\n%s", len(lines), buf.String())
	}
	if lines[1] != "10,1,3" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	// x=30 has no beta sample: blank last column.
	if lines[3] != "30,3," {
		t.Fatalf("row 3 = %q", lines[3])
	}
	if lines[4] != "40,,1" {
		t.Fatalf("row 4 = %q", lines[4])
	}
}

func TestCSVTrimsFloats(t *testing.T) {
	f := Figure{XLabel: "x", Series: []Series{{Name: "s", X: []float64{1.5}, Y: []float64{2.25}}}}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.5,2.25") {
		t.Fatalf("floats not trimmed: %q", buf.String())
	}
}

func TestASCIIRendersAllSeries(t *testing.T) {
	out := sample().ASCII(40, 10)
	for _, want := range []string{"test figure", "alpha", "beta", "x: c, y: h"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ASCII missing %q:\n%s", want, out)
		}
	}
	// Markers must appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	// Y-axis extremes labeled.
	if !strings.Contains(out, "3.00") || !strings.Contains(out, "1.00") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestASCIIEmptyFigure(t *testing.T) {
	out := (Figure{Title: "empty"}).ASCII(40, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty figure rendering: %q", out)
	}
}

func TestASCIIDegenerateRanges(t *testing.T) {
	f := Figure{
		Title:  "flat",
		Series: []Series{{Name: "s", X: []float64{5, 5}, Y: []float64{2, 2}}},
	}
	out := f.ASCII(30, 6)
	if out == "" || !strings.Contains(out, "flat") {
		t.Fatalf("degenerate figure: %q", out)
	}
}

func TestASCIIMinimumDimensions(t *testing.T) {
	out := sample().ASCII(1, 1) // clamped up internally
	if len(strings.Split(out, "\n")) < 6 {
		t.Fatalf("chart too small:\n%s", out)
	}
}
