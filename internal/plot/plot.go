// Package plot renders the figure series of the reproduction as CSV
// (for external plotting) and as ASCII line charts (for terminal
// inspection and EXPERIMENTS.md). It depends only on the standard
// library.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve: parallel X/Y slices.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of curves over a shared X axis meaning.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteCSV emits the figure as CSV: one x column, one column per
// series. Series are sampled on their own X values; the union of X
// values forms the rows, with blanks for missing samples.
func (f Figure) WriteCSV(w io.Writer) error {
	xs := f.unionX()
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.at(x); ok {
				row = append(row, trimFloat(y))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func (s Series) at(x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func (f Figure) unionX() []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	// insertion sort keeps this dependency-free and inputs are small
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

// markers distinguish series in ASCII charts.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// ASCII renders the figure as a width×height character chart with
// axis labels and a legend.
func (f Figure) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return f.Title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row
			if grid[r][col] == ' ' || grid[r][col] == m {
				grid[r][col] = m
			} else {
				grid[r][col] = '&' // overlapping series
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	for r, line := range grid {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%8.2f", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.2f", minY)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s %s%s%s\n", strings.Repeat(" ", 8),
		fmt.Sprintf("%-12.4g", minX),
		strings.Repeat(" ", max(0, width-24)),
		fmt.Sprintf("%12.4g", maxX))
	fmt.Fprintf(&b, "%s x: %s, y: %s\n", strings.Repeat(" ", 8), f.XLabel, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%s %c = %s\n", strings.Repeat(" ", 8), markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
