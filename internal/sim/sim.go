// Package sim implements the execution framework of the
// partial-compaction model: an interaction between a program and a
// memory manager proceeding in rounds of
//
//	de-allocation → compaction → allocation
//
// exactly as in Section 2.1 of Cohen & Petrank (PLDI 2013). The engine
// owns the ground truth (object placements, the compaction-budget
// ledger and the heap high-water mark) and validates every action of
// both parties:
//
//   - the program never exceeds M simultaneously-live words and only
//     allocates sizes in [1, n] (powers of two when the run is declared
//     to be in P2);
//   - the manager never overlaps objects and never moves more than
//     allocated/c words (c-partial bound);
//   - the program learns the address of every placement and is
//     notified of every move, and may free a moved object immediately
//     (the hook the paper's adversary P_F requires).
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"compaction/internal/budget"
	"compaction/internal/heap"
	"compaction/internal/obs"
	"compaction/internal/word"
)

// Config are the model parameters of a run.
type Config struct {
	// M is the bound on simultaneously live words.
	M word.Size
	// N is the largest allocatable object size (the paper's n).
	N word.Size
	// C is the compaction bound: the manager may move at most 1/C of
	// the allocated space. C == 0 means unlimited compaction;
	// C == budget.NoCompaction means a non-moving manager.
	C int64
	// Pow2Only declares the program to be in P2(M, n): every requested
	// size must be a power of two. The engine enforces it.
	Pow2Only bool
	// Capacity bounds the heap address space available to the manager.
	// Zero selects a generous default. Runs that exceed it fail, which
	// keeps buggy managers from running away.
	Capacity word.Size
	// MaxRounds aborts runs that do not terminate. Zero selects a
	// large default.
	MaxRounds int
	// Index selects the free-space index backend managers built on
	// mm.Base use. The zero value is the default treap; differential
	// verification runs the same trace under every backend.
	Index heap.IndexKind
	// Shards partitions the heap address space into equal shards, each
	// owned by an independent sub-heap with its own free-space index
	// and occupancy accounting. 0 and 1 both select the single
	// sequential heap of the paper; only managers built on
	// internal/heap/sharded consult the knob, so it is inert for the
	// classic managers. Values above 1 require Capacity to divide
	// evenly into shards of at least N words (Validate enforces it).
	Shards int
}

// MaxShards bounds Config.Shards: the sharded heap encodes the owning
// shard index in the low byte of every object ID it hands out.
const MaxShards = 256

// DefaultCapacityFactor is the default heap capacity in units of M.
const DefaultCapacityFactor = 64

func (c Config) withDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = c.M * DefaultCapacityFactor
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 20
	}
	return c
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.M <= 0 {
		return fmt.Errorf("sim: M must be positive, got %d", c.M)
	}
	if c.N <= 0 || c.N > c.M {
		return fmt.Errorf("sim: need 0 < n <= M, got n=%d M=%d", c.N, c.M)
	}
	if c.Pow2Only && !word.IsPow2(c.N) {
		return fmt.Errorf("sim: P2 run requires n to be a power of two, got %d", c.N)
	}
	if c.C < budget.NoCompaction {
		return fmt.Errorf("sim: invalid compaction bound %d", c.C)
	}
	if c.Index != heap.IndexTreap && c.Index != heap.IndexSkipList {
		return fmt.Errorf("sim: unknown free-space index backend %d", c.Index)
	}
	if c.Shards < 0 || c.Shards > MaxShards {
		return fmt.Errorf("sim: Shards must be in [0, %d], got %d", MaxShards, c.Shards)
	}
	if c.Shards > 1 {
		// Validate against the capacity a run would actually use, so a
		// zero Capacity (defaulted later) is checked consistently.
		capacity := c.Capacity
		if capacity == 0 {
			capacity = c.M * DefaultCapacityFactor
		}
		if capacity%word.Size(c.Shards) != 0 {
			return fmt.Errorf("sim: capacity %d does not divide into %d shards", capacity, c.Shards)
		}
		if per := capacity / word.Size(c.Shards); per < c.N {
			return fmt.Errorf("sim: shard capacity %d below max object size n=%d", per, c.N)
		}
	}
	return nil
}

// View is the read-only state a program may consult while deciding its
// next round.
type View struct {
	Round     int
	Live      word.Size
	Allocated word.Size
	Moved     word.Size
	HighWater word.Addr
	Config    Config

	occ *heap.Occupancy
}

// Lookup returns the current span of a live object.
func (v *View) Lookup(id heap.ObjectID) (heap.Span, bool) {
	return v.occ.Lookup(id)
}

// Program is the allocating side of the interaction. Implementations
// include the adversaries (Robson's P_R, the paper's P_F) and
// synthetic workloads.
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// Step returns the object IDs to free and the sizes to allocate in
	// this round, and whether the program is finished after it. The
	// engine assigns IDs to the new objects in request order starting
	// from the engine's counter; placements arrive via Placed.
	Step(v *View) (frees []heap.ObjectID, allocs []word.Size, done bool)
	// Placed reports the placement of an object requested in the
	// current round, in request order.
	Placed(id heap.ObjectID, s heap.Span)
	// Moved reports that the manager relocated a live object. If the
	// result is true, the engine frees the object immediately, before
	// the manager takes any further action (the paper's
	// free-on-compaction rule used by P_F).
	Moved(id heap.ObjectID, from, to heap.Span) (freeNow bool)
}

// Mover is handed to the manager during allocation (and round starts)
// so it can spend compaction budget.
type Mover interface {
	// Move relocates live object id to address to. It debits the
	// budget, validates the destination, and notifies the program. If
	// the program frees the object in response, freed is true and the
	// destination words are immediately free again; the manager must
	// update its own structures accordingly.
	Move(id heap.ObjectID, to word.Addr) (freed bool, err error)
	// Remaining returns the compaction budget still available, in words.
	Remaining() word.Size
	// Lookup returns the current span of a live object.
	Lookup(id heap.ObjectID) (heap.Span, bool)
}

// Manager is the memory-management side of the interaction.
type Manager interface {
	// Name identifies the manager in reports.
	Name() string
	// Reset prepares the manager for a fresh run with the given
	// configuration.
	Reset(cfg Config)
	// Allocate returns the placement address for a new object. The
	// engine has already credited the allocation to the compaction
	// budget, so the manager may move up to mv.Remaining() words first.
	Allocate(id heap.ObjectID, size word.Size, mv Mover) (word.Addr, error)
	// Free notifies the manager that the program freed an object. It
	// is NOT called for objects the program freed in response to a
	// move; Mover.Move reports those to the manager directly.
	Free(id heap.ObjectID, s heap.Span)
}

// RoundCompactor is an optional Manager extension: managers that want
// to compact at the start of a round (after the program's frees,
// before its allocations) implement it.
type RoundCompactor interface {
	StartRound(mv Mover)
}

// Result summarizes a finished run.
type Result struct {
	Program   string
	Manager   string
	Config    Config
	Rounds    int
	Allocs    int64
	Frees     int64
	Moves     int64
	HighWater word.Addr // HS: the paper's heap size
	MaxLive   word.Size
	Allocated word.Size // s: total words allocated
	Moved     word.Size // q: total words moved
}

// WasteFactor returns HS/M, the space-overhead factor the paper plots.
func (r Result) WasteFactor() float64 {
	return float64(r.HighWater) / float64(r.Config.M)
}

// Error categories for failed runs.
var (
	// ErrProgram marks a violation by the program (exceeding M,
	// illegal size, freeing a dead object).
	ErrProgram = errors.New("sim: program violated the model")
	// ErrManager marks a violation by the manager (overlap, budget,
	// capacity, allocation failure).
	ErrManager = errors.New("sim: manager violated the model")
	// ErrMaxRounds marks a run aborted because it reached
	// Config.MaxRounds without the program declaring itself done. It is
	// a program violation (the model requires termination), so it also
	// matches ErrProgram.
	ErrMaxRounds = fmt.Errorf("%w: round limit exceeded", ErrProgram)
	// ErrCanceled marks a run stopped cooperatively by its context —
	// a cancellation or a deadline, not a model violation by either
	// party. The wrapped chain includes the context's own error, so
	// errors.Is(err, context.DeadlineExceeded) distinguishes deadline
	// misses from plain cancellation.
	ErrCanceled = errors.New("sim: run canceled")
)

// Engine couples one program with one manager for one run.
type Engine struct {
	cfg    Config
	prog   Program
	mgr    Manager
	occ    *heap.Occupancy
	ledger *budget.Ledger
	nextID heap.ObjectID
	mv     mover // reused across every move/alloc; no per-op allocation

	rounds int
	allocs int64
	frees  int64
	moves  int64

	// RoundHook, if set, is called with a result snapshot after rounds
	// selected by RoundHookEvery.
	RoundHook func(Result)
	// RoundHookEvery samples the hook: values > 1 fire it only every
	// k-th round (and always on the final round). Values <= 1 fire it
	// every round. Verification harnesses use this to keep refereed
	// runs affordable at paper scale; see check.RunSampled.
	RoundHookEvery int
	// Tracer, if non-nil, receives one typed obs event per allocation,
	// free, move and round boundary (unsampled — the tracer sees every
	// round even when RoundHookEvery thins the hook). The nil default
	// costs one predictable branch per emission site and keeps the
	// round loop allocation-free; enabled tracers built on obs.Ring
	// and obs.SimMetrics keep it allocation-free too (both pinned by
	// TestEngineRoundIsAllocFree). The setting survives Reset.
	Tracer obs.Tracer
	// HeapHook, if non-nil, receives the engine's ground-truth
	// occupancy at the same sampled round boundaries as RoundHook
	// (every RoundHookEvery-th round and the final one). It is the
	// fragmentation-introspection twin of Tracer: nil is the zero-cost
	// default (one branch per round), and an installed hook — such as
	// heapscope.Sampler.Sample — must stay allocation-free on its warm
	// path so the round loop's zero-alloc pin holds with sampling
	// enabled. Like Tracer, the setting survives Reset, and the
	// nilguard analyzer statically requires every call site to sit
	// behind a nil check.
	HeapHook HeapHook
}

// HeapHook observes the heap at a sampled round boundary: round is the
// 0-based index of the round just completed, occ the engine's live
// occupancy record. Hooks must treat occ as read-only and must not
// retain references past the run — the engine mutates it every round
// and recycles it across Reset.
type HeapHook func(round int, occ *heap.Occupancy)

// NewEngine validates the configuration and prepares a run.
func NewEngine(cfg Config, prog Program, mgr Manager) (*Engine, error) {
	e := &Engine{occ: heap.NewOccupancy()}
	e.mv.e = e
	if err := e.Reset(cfg, prog, mgr); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset prepares the engine for a fresh run with a new configuration,
// program, and manager, retaining internal structures (the occupancy
// bitmap and table pages) for reuse. It lets a sweep worker run many
// cells without rebuilding the engine's ground truth from scratch.
// The hook settings carry over.
func (e *Engine) Reset(cfg Config, prog Program, mgr Manager) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	e.cfg, e.prog, e.mgr = cfg, prog, mgr
	e.occ.Reset()
	e.ledger = budget.NewLedger(cfg.C)
	e.nextID = 1
	e.rounds, e.allocs, e.frees, e.moves = 0, 0, 0, 0
	return nil
}

// Run executes the interaction to completion and returns the result.
// It is the non-cancellable convenience form of RunCtx; callers that
// need deadlines or SIGINT handling pass their own context there.
func (e *Engine) Run() (Result, error) {
	//compactlint:allow ctxflow deliberate convenience wrapper; RunCtx is the context-aware API
	return e.RunCtx(context.Background())
}

// RunCtx is Run under cooperative cancellation: the engine polls the
// context at every round boundary and, when it is done, stops the run
// with a partial Result and an error matching ErrCanceled (and the
// context's cause). Cancellation is cooperative — a program stalled
// inside a single Step is not preempted — which keeps the round loop
// allocation-free: a background context costs one nil check per
// round, a real one a non-blocking channel poll.
//
// The noalloc annotation is the static half of the zero-allocs-per-
// round pin; the dynamic half is TestEngineRoundIsAllocFree in
// allocs_test.go, which measures the same property with
// testing.AllocsPerRun. Each names the other so neither can be
// weakened unnoticed.
//
//compactlint:noalloc
func (e *Engine) RunCtx(ctx context.Context) (Result, error) {
	e.mgr.Reset(e.cfg)
	//compactlint:allow noalloc per-run setup before the loop, charged to runFixedAllocBudget
	view := &View{Config: e.cfg, occ: e.occ}
	done := ctx.Done()
	var roundStart time.Time
	for round := 0; round < e.cfg.MaxRounds; round++ {
		if done != nil {
			select {
			case <-done:
				return e.result(), fmt.Errorf("%w at round %d: %w", ErrCanceled, round, context.Cause(ctx))
			default:
			}
		}
		if e.Tracer != nil {
			// The round timestamp feeds the trace's Nanos field only;
			// no simulation decision ever reads it, so determinism of
			// results is preserved.
			roundStart = time.Now() //compactlint:allow determinism tracing timestamp, never read by the model
		}
		view.Round = round
		view.Live = e.occ.Live()
		view.Allocated, view.Moved = e.ledger.Snapshot()
		view.HighWater = e.occ.HighWater()

		frees, allocs, done := e.prog.Step(view)
		if err := e.doFrees(frees); err != nil {
			return e.result(), err
		}
		if rc, ok := e.mgr.(RoundCompactor); ok {
			rc.StartRound(&e.mv)
		}
		if err := e.doAllocs(allocs); err != nil {
			return e.result(), err
		}
		e.rounds = round + 1
		if e.Tracer != nil {
			s, q := e.ledger.Snapshot()
			e.Tracer.Emit(obs.Event{
				Kind:      obs.EvRound,
				Round:     round,
				Live:      e.occ.Live(),
				Allocated: s,
				Moved:     q,
				HighWater: e.occ.HighWater(),
				Budget:    e.ledger.Remaining(),
				Nanos:     time.Since(roundStart).Nanoseconds(), //compactlint:allow determinism tracing timestamp, never read by the model
			})
		}
		if e.RoundHook != nil &&
			(e.RoundHookEvery <= 1 || done || (round+1)%e.RoundHookEvery == 0) {
			e.RoundHook(e.result())
		}
		if e.HeapHook != nil &&
			(e.RoundHookEvery <= 1 || done || (round+1)%e.RoundHookEvery == 0) {
			e.HeapHook(round, e.occ)
		}
		if done {
			return e.result(), nil
		}
	}
	return e.result(), fmt.Errorf("%w: run exceeded %d rounds", ErrMaxRounds, e.cfg.MaxRounds)
}

//compactlint:noalloc
func (e *Engine) doFrees(frees []heap.ObjectID) error {
	for _, id := range frees {
		s, err := e.occ.Remove(id)
		if err != nil {
			return fmt.Errorf("%w: free of non-live object %d (round %d): %w",
				ErrProgram, id, e.rounds, err)
		}
		e.frees++
		e.mgr.Free(id, s)
		if e.Tracer != nil {
			e.Tracer.Emit(obs.Event{Kind: obs.EvFree, Round: e.rounds, ID: id, Addr: s.Addr, Size: s.Size})
		}
	}
	return nil
}

//compactlint:noalloc
func (e *Engine) doAllocs(allocs []word.Size) error {
	for _, size := range allocs {
		if size <= 0 || size > e.cfg.N {
			return fmt.Errorf("%w: allocation size %d outside [1, %d] (round %d)",
				ErrProgram, size, e.cfg.N, e.rounds)
		}
		if e.cfg.Pow2Only && !word.IsPow2(size) {
			return fmt.Errorf("%w: allocation size %d is not a power of two (round %d)",
				ErrProgram, size, e.rounds)
		}
		if e.occ.Live()+size > e.cfg.M {
			return fmt.Errorf("%w: allocation of %d words would exceed live bound M=%d (live %d, round %d)",
				ErrProgram, size, e.cfg.M, e.occ.Live(), e.rounds)
		}
		// The new allocation counts toward the compaction quota the
		// manager may spend while serving it.
		e.ledger.RecordAlloc(size)
		id := e.nextID
		e.nextID++
		addr, err := e.mgr.Allocate(id, size, &e.mv)
		if err != nil {
			// %w on the manager's own error: retry policies and fault
			// tests classify failures with errors.Is through this wrap.
			return fmt.Errorf("%w: %s failed to allocate %d words (round %d): %w",
				ErrManager, e.mgr.Name(), size, e.rounds, err)
		}
		s := heap.Span{Addr: addr, Size: size}
		if s.End() > e.cfg.Capacity {
			return fmt.Errorf("%w: placement %v exceeds heap capacity %d (round %d)",
				ErrManager, s, e.cfg.Capacity, e.rounds)
		}
		if err := e.occ.Place(id, s); err != nil {
			return fmt.Errorf("%w: invalid placement by %s (round %d): %w",
				ErrManager, e.mgr.Name(), e.rounds, err)
		}
		e.allocs++
		if e.Tracer != nil {
			e.Tracer.Emit(obs.Event{Kind: obs.EvAlloc, Round: e.rounds, ID: id, Addr: addr, Size: size})
		}
		e.prog.Placed(id, s)
	}
	return nil
}

// Objects returns a snapshot of the live objects in address order,
// for visualization and post-run inspection.
func (e *Engine) Objects() []heap.Object {
	var out []heap.Object
	e.occ.Each(func(o heap.Object) bool {
		out = append(out, o)
		return true
	})
	return out
}

// Extent returns the end address of the highest currently-live word.
func (e *Engine) Extent() word.Addr { return e.occ.Extent() }

//compactlint:noalloc
func (e *Engine) result() Result {
	s, q := e.ledger.Snapshot()
	return Result{
		Program:   e.prog.Name(),
		Manager:   e.mgr.Name(),
		Config:    e.cfg,
		Rounds:    e.rounds,
		Allocs:    e.allocs,
		Frees:     e.frees,
		Moves:     e.moves,
		HighWater: e.occ.HighWater(),
		MaxLive:   e.occ.MaxLive(),
		Allocated: s,
		Moved:     q,
	}
}

// mover implements Mover with full validation against the engine's
// ground truth.
type mover struct{ e *Engine }

//compactlint:noalloc
func (m *mover) Move(id heap.ObjectID, to word.Addr) (bool, error) {
	e := m.e
	s, ok := e.occ.Lookup(id)
	if !ok {
		return false, fmt.Errorf("%w: move of non-live object %d", ErrManager, id)
	}
	if to+s.Size > e.cfg.Capacity {
		return false, fmt.Errorf("%w: move of object %d to %d exceeds capacity %d",
			ErrManager, id, to, e.cfg.Capacity)
	}
	if err := e.ledger.Move(s.Size); err != nil {
		return false, fmt.Errorf("%w: %w", ErrManager, err)
	}
	old, err := e.occ.Move(id, to)
	if err != nil {
		return false, fmt.Errorf("%w: %w", ErrManager, err)
	}
	e.moves++
	if e.Tracer != nil {
		e.Tracer.Emit(obs.Event{Kind: obs.EvMove, Round: e.rounds, ID: id, From: old.Addr, Addr: to, Size: s.Size})
	}
	ns := heap.Span{Addr: to, Size: s.Size}
	if e.prog.Moved(id, old, ns) {
		if _, err := e.occ.Remove(id); err != nil {
			panic(fmt.Sprintf("sim: freeing just-moved object %d: %v", id, err))
		}
		e.frees++
		if e.Tracer != nil {
			e.Tracer.Emit(obs.Event{Kind: obs.EvFree, Round: e.rounds, ID: id, Addr: to, Size: s.Size})
		}
		return true, nil
	}
	return false, nil
}

//compactlint:noalloc
func (m *mover) Remaining() word.Size { return m.e.ledger.Remaining() }

//compactlint:noalloc
func (m *mover) Lookup(id heap.ObjectID) (heap.Span, bool) {
	return m.e.occ.Lookup(id)
}
