package sim

import (
	"testing"

	"compaction/internal/heap"
	"compaction/internal/word"
)

func TestScriptName(t *testing.T) {
	if NewScript("", nil).Name() != "script" {
		t.Fatal("default name wrong")
	}
	if NewScript("x", nil).Name() != "x" {
		t.Fatal("custom name wrong")
	}
}

func TestScriptPlacementOfBounds(t *testing.T) {
	s := NewScript("x", nil)
	if _, ok := s.PlacementOf(-1); ok {
		t.Fatal("negative index accepted")
	}
	if _, ok := s.PlacementOf(0); ok {
		t.Fatal("empty script returned a placement")
	}
	s.Placed(7, heap.Span{Addr: 4, Size: 2})
	if sp, ok := s.PlacementOf(0); !ok || sp.Addr != 4 {
		t.Fatalf("placement: %v %v", sp, ok)
	}
	if s.ObjectCount() != 1 {
		t.Fatalf("count = %d", s.ObjectCount())
	}
}

func TestScriptMovedUpdatesPlacement(t *testing.T) {
	s := NewScript("x", nil)
	s.Placed(1, heap.Span{Addr: 0, Size: 4})
	if s.Moved(1, heap.Span{Addr: 0, Size: 4}, heap.Span{Addr: 16, Size: 4}) {
		t.Fatal("default script freed on move")
	}
	if sp, _ := s.PlacementOf(0); sp.Addr != 16 {
		t.Fatalf("moved placement not tracked: %v", sp)
	}
	s.FreeMoved = true
	if !s.Moved(1, heap.Span{Addr: 16, Size: 4}, heap.Span{Addr: 32, Size: 4}) {
		t.Fatal("FreeMoved script kept the object")
	}
}

func TestScriptStepSequence(t *testing.T) {
	s := NewScript("x", []ScriptRound{
		{Allocs: []word.Size{1, 2}},
		{FreeRefs: []int{1}},
	})
	frees, allocs, done := s.Step(nil)
	if len(frees) != 0 || len(allocs) != 2 || done {
		t.Fatalf("round 0: %v %v %v", frees, allocs, done)
	}
	s.Placed(10, heap.Span{Addr: 0, Size: 1})
	s.Placed(11, heap.Span{Addr: 1, Size: 2})
	frees, allocs, done = s.Step(nil)
	if len(frees) != 1 || frees[0] != 11 || len(allocs) != 0 || !done {
		t.Fatalf("round 1: %v %v %v", frees, allocs, done)
	}
	// Past the end: done with no actions.
	frees, allocs, done = s.Step(nil)
	if frees != nil || allocs != nil || !done {
		t.Fatalf("past end: %v %v %v", frees, allocs, done)
	}
}
