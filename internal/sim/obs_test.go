package sim_test

import (
	"bytes"
	"math"
	"testing"

	"compaction/internal/core"
	"compaction/internal/mm"
	"compaction/internal/obs"
	"compaction/internal/sim"
	"compaction/internal/workload"

	_ "compaction/internal/mm/fits"
	_ "compaction/internal/mm/threshold"
)

// runTraced runs one seeded workload against a fresh manager with the
// given tracer attached to both the engine and (when accepted) the
// manager stack.
func runTraced(t *testing.T, cfg sim.Config, mkProg func() sim.Program, manager string, tr obs.Tracer) sim.Result {
	t.Helper()
	mgr, err := mm.New(manager)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(cfg, mkProg(), mgr)
	if err != nil {
		t.Fatal(err)
	}
	e.Tracer = tr
	if ts, ok := mgr.(obs.TracerSetter); ok {
		ts.SetTracer(tr)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTraceDeterministicReplay asserts that two identical seeded runs
// emit identical event streams — both as in-memory events (with the
// wall-clock Nanos field masked) and as serialized NDJSON bytes
// (which never contain wall clock at all).
func TestTraceDeterministicReplay(t *testing.T) {
	cfg := sim.Config{M: 1 << 12, N: 1 << 5, C: 16}
	mkProg := func() sim.Program {
		return workload.NewRandom(workload.Config{Seed: 42, Rounds: 60, Dist: workload.Geometric})
	}

	capture := func() ([]obs.Event, []byte) {
		var rec obs.Recorder
		var ndjson bytes.Buffer
		sink := obs.NewNDJSONSink(&ndjson)
		runTraced(t, cfg, mkProg, "first-fit", obs.Tee(&rec, sink))
		if sink.Err() != nil {
			t.Fatal(sink.Err())
		}
		return rec.Events, ndjson.Bytes()
	}

	evs1, nd1 := capture()
	evs2, nd2 := capture()
	if len(evs1) == 0 {
		t.Fatal("no events recorded")
	}
	if len(evs1) != len(evs2) {
		t.Fatalf("event counts differ: %d vs %d", len(evs1), len(evs2))
	}
	for i := range evs1 {
		a, b := evs1[i], evs2[i]
		a.Nanos, b.Nanos = 0, 0
		if a != b {
			t.Fatalf("event %d differs:\n%+v\n%+v", i, evs1[i], evs2[i])
		}
	}
	if !bytes.Equal(nd1, nd2) {
		t.Fatal("NDJSON streams of identical seeded runs differ")
	}
}

// TestSeriesReproducesFinalResult is the acceptance check of the
// telemetry layer: the per-round HS series recorded through the
// tracer must reproduce the run's final HS — and hence HS/M —
// bit-exactly, for an adversarial P_F run that actually compacts.
func TestSeriesReproducesFinalResult(t *testing.T) {
	cfg := sim.Config{M: 1 << 14, N: 1 << 7, C: 16, Pow2Only: true}
	for _, manager := range []string{"first-fit", "threshold"} {
		var rec obs.SeriesRecorder
		res := runTraced(t, cfg, func() sim.Program { return core.NewPF(core.Options{}) }, manager, &rec)
		if len(rec.Samples) != res.Rounds {
			t.Fatalf("%s: %d samples for %d rounds", manager, len(rec.Samples), res.Rounds)
		}
		if got := rec.FinalHighWater(); got != res.HighWater {
			t.Fatalf("%s: series HS %d != final HS %d", manager, got, res.HighWater)
		}
		seriesWaste := float64(rec.FinalHighWater()) / float64(cfg.M)
		if math.Float64bits(seriesWaste) != math.Float64bits(res.WasteFactor()) {
			t.Fatalf("%s: series waste %v is not bit-identical to result waste %v",
				manager, seriesWaste, res.WasteFactor())
		}
		// The series is internally consistent: HS is monotone and
		// never below live words.
		var last int64
		for _, s := range rec.Samples {
			if s.HighWater < last {
				t.Fatalf("%s: HS decreased %d -> %d at round %d", manager, last, s.HighWater, s.Round)
			}
			if s.HighWater < s.Live {
				t.Fatalf("%s: HS %d below live %d at round %d", manager, s.HighWater, s.Live, s.Round)
			}
			last = s.HighWater
		}
	}
}

// TestMoveEventsBalance cross-checks the event stream against the
// engine's own counters: every move and free in the result appears as
// exactly one event, and free-on-move frees are included.
func TestMoveEventsBalance(t *testing.T) {
	cfg := sim.Config{M: 1 << 12, N: 1 << 6, C: 8, Pow2Only: true}
	var rec obs.Recorder
	res := runTraced(t, cfg, func() sim.Program { return core.NewPF(core.Options{}) }, "threshold", &rec)
	var allocs, frees, moves int64
	for _, ev := range rec.Events {
		switch ev.Kind {
		case obs.EvAlloc:
			allocs++
		case obs.EvFree:
			frees++
		case obs.EvMove:
			moves++
		}
	}
	if allocs != res.Allocs || frees != res.Frees || moves != res.Moves {
		t.Fatalf("event counts (a=%d f=%d m=%d) != result counters (a=%d f=%d m=%d)",
			allocs, frees, moves, res.Allocs, res.Frees, res.Moves)
	}
}
