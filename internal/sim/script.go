package sim

import (
	"compaction/internal/heap"
	"compaction/internal/word"
)

// ScriptRound is one round of a scripted program. FreeRefs index into
// the sequence of allocations the script has made so far (0 = first
// object ever allocated), which lets scripts be written without
// knowing engine-assigned IDs.
type ScriptRound struct {
	FreeRefs []int
	Allocs   []word.Size
}

// Script is a deterministic, pre-written program, mainly used in tests
// and examples. It records every placement it observes.
type Script struct {
	ProgName  string
	Rounds    []ScriptRound
	FreeMoved bool // free objects immediately when the manager moves them

	ids    []heap.ObjectID
	places map[heap.ObjectID]heap.Span
	step   int
}

var _ Program = (*Script)(nil)

// NewScript builds a scripted program.
func NewScript(name string, rounds []ScriptRound) *Script {
	return &Script{ProgName: name, Rounds: rounds, places: make(map[heap.ObjectID]heap.Span)}
}

// Name implements Program.
func (s *Script) Name() string {
	if s.ProgName == "" {
		return "script"
	}
	return s.ProgName
}

// Step implements Program.
func (s *Script) Step(*View) ([]heap.ObjectID, []word.Size, bool) {
	if s.step >= len(s.Rounds) {
		return nil, nil, true
	}
	r := s.Rounds[s.step]
	s.step++
	var frees []heap.ObjectID
	for _, ref := range r.FreeRefs {
		frees = append(frees, s.ids[ref])
	}
	return frees, r.Allocs, s.step >= len(s.Rounds)
}

// Placed implements Program.
func (s *Script) Placed(id heap.ObjectID, sp heap.Span) {
	if s.places == nil {
		s.places = make(map[heap.ObjectID]heap.Span)
	}
	s.ids = append(s.ids, id)
	s.places[id] = sp
}

// Moved implements Program.
func (s *Script) Moved(id heap.ObjectID, _, to heap.Span) bool {
	s.places[id] = to
	return s.FreeMoved
}

// PlacementOf returns the latest span the script observed for the k-th
// object it allocated.
func (s *Script) PlacementOf(k int) (heap.Span, bool) {
	if k < 0 || k >= len(s.ids) {
		return heap.Span{}, false
	}
	sp, ok := s.places[s.ids[k]]
	return sp, ok
}

// ObjectCount returns how many objects the script has allocated so far.
func (s *Script) ObjectCount() int { return len(s.ids) }
