package sim_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"compaction/internal/mm"
	"compaction/internal/sim"
	"compaction/internal/workload"

	_ "compaction/internal/mm/fits"
)

func ctxEngine(t *testing.T, rounds int) *sim.Engine {
	t.Helper()
	mgr, err := mm.New("first-fit")
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{M: 1 << 10, N: 1 << 4, C: 16},
		workload.NewRandom(workload.Config{Seed: 1, Rounds: rounds}), mgr)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunCtxBackgroundCompletes(t *testing.T) {
	res, err := ctxEngine(t, 20).RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 20 {
		t.Fatalf("rounds = %d, want 20", res.Rounds)
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ctxEngine(t, 20).RunCtx(ctx)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context cause lost: %v", err)
	}
	if res.Rounds != 0 {
		t.Fatalf("pre-canceled run still did %d rounds", res.Rounds)
	}
}

func TestRunCtxDeadlineStopsMidRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	// A workload long enough to outlive the deadline: the per-round
	// poll must stop it with a partial result.
	e := ctxEngine(t, 1<<20)
	start := time.Now()
	res, err := e.RunCtx(ctx)
	if !errors.Is(err, sim.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not honored")
	}
	if res.Rounds == 0 {
		t.Fatal("no progress before the deadline")
	}
}

func TestRunCtxCancelMidRunKeepsPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := ctxEngine(t, 1<<20)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	res, err := e.RunCtx(ctx)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The partial result is still internally consistent.
	if res.Allocs < res.Moves || res.HighWater <= 0 {
		t.Fatalf("partial result inconsistent: %+v", res)
	}
	// The engine remains reusable after a canceled run.
	mgr, err2 := mm.New("first-fit")
	if err2 != nil {
		t.Fatal(err2)
	}
	if err := e.Reset(sim.Config{M: 1 << 10, N: 1 << 4, C: 16},
		workload.NewRandom(workload.Config{Seed: 2, Rounds: 10}), mgr); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("engine unusable after cancellation: %v", err)
	}
}
