package sim

import (
	"errors"
	"testing"

	"compaction/internal/heap"
	"compaction/internal/word"
)

// TestValidateBoundaries pins the exact edges of Config.Validate: the
// degenerate-but-legal M == N case, the index-backend gate, and the
// first illegal value on each side of every boundary.
func TestValidateBoundaries(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"M equals N", Config{M: 64, N: 64, C: 8}, true},
		{"M one below N", Config{M: 63, N: 64, C: 8}, false},
		{"N is one word", Config{M: 64, N: 1, C: 8}, true},
		{"c at NoCompaction", Config{M: 64, N: 8, C: -1}, true},
		{"c below NoCompaction", Config{M: 64, N: 8, C: -2}, false},
		{"treap index", Config{M: 64, N: 8, Index: heap.IndexTreap}, true},
		{"skiplist index", Config{M: 64, N: 8, Index: heap.IndexSkipList}, true},
		{"unknown index backend", Config{M: 64, N: 8, Index: heap.IndexKind(99)}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("validated: %+v", tc.cfg)
			}
		})
	}
}

func TestWithDefaultsFillsZeroes(t *testing.T) {
	c := Config{M: 1 << 10, N: 1 << 5}.withDefaults()
	if c.Capacity != (1<<10)*DefaultCapacityFactor {
		t.Fatalf("default capacity = %d", c.Capacity)
	}
	if c.MaxRounds != 1<<20 {
		t.Fatalf("default max rounds = %d", c.MaxRounds)
	}
	explicit := Config{M: 1 << 10, N: 1 << 5, Capacity: 123, MaxRounds: 7}.withDefaults()
	if explicit.Capacity != 123 || explicit.MaxRounds != 7 {
		t.Fatalf("explicit values overwritten: %+v", explicit)
	}
}

// TestCapacityExactFit: a heap capacity exactly equal to the bump
// frontier succeeds, one word less fails with ErrManager — the
// boundary sits between them, not off by one.
func TestCapacityExactFit(t *testing.T) {
	prog := func() *Script {
		return NewScript("p", []ScriptRound{{Allocs: []word.Size{8, 8}}})
	}
	exact := cfg()
	exact.Capacity = 16
	e, err := NewEngine(exact, prog(), &bumpManager{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("exact-fit capacity rejected: %v", err)
	}
	tight := cfg()
	tight.Capacity = 15
	e2, err := NewEngine(tight, prog(), &bumpManager{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(); !errors.Is(err, ErrManager) {
		t.Fatalf("capacity 15 for 16 words: want ErrManager, got %v", err)
	}
}

// TestMaxRoundsExhaustion: a run that hits the round limit surfaces
// ErrMaxRounds, which is distinguishable from — but still is — a
// program error, and the partial result is preserved.
func TestMaxRoundsExhaustion(t *testing.T) {
	c := cfg()
	c.MaxRounds = 1
	prog := NewScript("p", []ScriptRound{
		{Allocs: []word.Size{8}},
		{Allocs: []word.Size{8}},
		{Allocs: []word.Size{8}},
	})
	e, err := NewEngine(c, prog, &bumpManager{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("want ErrMaxRounds, got %v", err)
	}
	if !errors.Is(err, ErrProgram) {
		t.Fatalf("ErrMaxRounds must remain a program error, got %v", err)
	}
	if res.Rounds != 1 || res.Allocs != 1 {
		t.Fatalf("partial result lost: %+v", res)
	}
	// A program that finishes within the limit must not trip it.
	one := NewScript("p", []ScriptRound{{Allocs: []word.Size{8}}})
	e2, _ := NewEngine(c, one, &bumpManager{})
	if _, err := e2.Run(); err != nil {
		t.Fatalf("run within the limit failed: %v", err)
	}
}
