package sim

import (
	"fmt"
	"testing"

	"compaction/internal/heap"
	"compaction/internal/obs"
	"compaction/internal/obs/heapscope"
	"compaction/internal/word"
)

// The engine's round loop must not allocate: doFrees/doAllocs,
// the occupancy updates, and the budget ledger all work in place, so
// the only allocations of a Run are its fixed per-run setup (the
// program view and the ledger). These tests pin that property with
// testing.AllocsPerRun rather than a benchmark, so a regression fails
// `go test` directly.
//
// The per-run fixed budget is documented in runFixedAllocBudget; the
// per-round budget is exactly zero and is asserted by comparing runs
// that differ only in round count.
const runFixedAllocBudget = 8

// steadyProg frees everything it allocated in the previous round and
// allocates k fresh objects, for a fixed number of rounds. All of its
// buffers are preallocated: a Step/Placed cycle performs no
// allocations in steady state, so any allocation the harness measures
// belongs to the engine or the manager.
type steadyProg struct {
	rounds, k int
	step      int
	live      []heap.ObjectID
	frees     []heap.ObjectID
	allocs    []word.Size
}

func newSteadyProg(rounds, k int, size word.Size) *steadyProg {
	p := &steadyProg{
		rounds: rounds,
		k:      k,
		live:   make([]heap.ObjectID, 0, k),
		frees:  make([]heap.ObjectID, 0, k),
		allocs: make([]word.Size, k),
	}
	for i := range p.allocs {
		p.allocs[i] = size
	}
	return p
}

func (p *steadyProg) reset() {
	p.step = 0
	p.live = p.live[:0]
	p.frees = p.frees[:0]
}

func (p *steadyProg) Name() string { return "steady" }

func (p *steadyProg) Step(*View) ([]heap.ObjectID, []word.Size, bool) {
	if p.step >= p.rounds {
		return nil, nil, true
	}
	p.step++
	p.frees = append(p.frees[:0], p.live...)
	p.live = p.live[:0]
	return p.frees, p.allocs, p.step >= p.rounds
}

func (p *steadyProg) Placed(id heap.ObjectID, _ heap.Span) {
	p.live = append(p.live, id)
}

func (p *steadyProg) Moved(heap.ObjectID, heap.Span, heap.Span) bool { return false }

// stackMgr is a minimal allocation-free manager for fixed-size slots:
// freed addresses go on a stack and are handed back LIFO. It exists so
// the measurement isolates the engine.
type stackMgr struct {
	slot word.Size
	free []word.Addr
	next word.Addr
}

func (m *stackMgr) Name() string { return "stack" }

func (m *stackMgr) Reset(Config) {
	m.free = m.free[:0]
	m.next = 0
}

func (m *stackMgr) Allocate(_ heap.ObjectID, size word.Size, _ Mover) (word.Addr, error) {
	if size != m.slot {
		return 0, fmt.Errorf("stackMgr: size %d, want %d", size, m.slot)
	}
	if n := len(m.free); n > 0 {
		a := m.free[n-1]
		m.free = m.free[:n-1]
		return a, nil
	}
	a := m.next
	m.next += size
	return a, nil
}

func (m *stackMgr) Free(_ heap.ObjectID, s heap.Span) {
	m.free = append(m.free, s.Addr)
}

// TestEngineRoundIsAllocFree pins the zero-allocs-per-round property
// in every observability mode: with tracing disabled (the nil-tracer
// fast path every production sweep uses), with an enabled tracer
// built from the allocation-free obs primitives (ring buffer + atomic
// metrics), which is what makes always-on flight recording free, and
// with a heapscope sampler on the HeapHook at its default stride,
// which is what makes heap introspection safe to leave on by default.
func TestEngineRoundIsAllocFree(t *testing.T) {
	cfg := Config{M: 1 << 10, N: 1 << 6, C: 16}
	const k = 8
	const slot = word.Size(16)

	measure := func(rounds int, tracer obs.Tracer, hook HeapHook, every int) float64 {
		prog := newSteadyProg(rounds, k, slot)
		mgr := &stackMgr{slot: slot, free: make([]word.Addr, 0, k)}
		e, err := NewEngine(cfg, prog, mgr)
		if err != nil {
			t.Fatal(err)
		}
		e.Tracer = tracer
		e.HeapHook = hook
		e.RoundHookEvery = every
		run := func() {
			prog.reset()
			if err := e.Reset(cfg, prog, mgr); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm up retained pages and buffer capacities
		return testing.AllocsPerRun(10, run)
	}

	modes := []struct {
		name   string
		tracer func() obs.Tracer
		hook   func(t *testing.T) (HeapHook, int)
	}{
		{"disabled", func() obs.Tracer { return nil }, nil},
		{"ring+metrics", func() obs.Tracer {
			return obs.Tee(obs.NewRing(1<<10), obs.NewSimMetrics(obs.NewRegistry()))
		}, nil},
		{"heapscope", func() obs.Tracer { return nil }, func(t *testing.T) (HeapHook, int) {
			s, err := heapscope.New(heapscope.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return s.Sample, heapscope.DefaultEvery
		}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			var hook HeapHook
			every := 0
			if mode.hook != nil {
				hook, every = mode.hook(t)
			}
			short := measure(32, mode.tracer(), hook, every)
			long := measure(512, mode.tracer(), hook, every)
			if long > short {
				perRound := (long - short) / (512 - 32)
				t.Errorf("engine rounds allocate: %.0f allocs at 512 rounds vs %.0f at 32 (%.3f allocs/round, want 0)",
					long, short, perRound)
			}
			if short > runFixedAllocBudget {
				t.Errorf("per-run fixed allocations = %.0f, over the documented budget %d",
					short, runFixedAllocBudget)
			}
		})
	}
}
