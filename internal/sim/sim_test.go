package sim

import (
	"errors"
	"strings"
	"testing"

	"compaction/internal/budget"
	"compaction/internal/heap"
	"compaction/internal/word"
)

// bumpManager is a minimal test manager: it places every object at the
// frontier and never reuses or moves anything.
type bumpManager struct {
	frontier word.Addr
}

func (b *bumpManager) Name() string                  { return "bump" }
func (b *bumpManager) Reset(Config)                  { b.frontier = 0 }
func (b *bumpManager) Free(heap.ObjectID, heap.Span) {}
func (b *bumpManager) Allocate(_ heap.ObjectID, size word.Size, _ Mover) (word.Addr, error) {
	a := b.frontier
	b.frontier += size
	return a, nil
}

// slidingManager compacts everything to the bottom at the start of
// each round, then bump-allocates at the live frontier. With unlimited
// budget it keeps the heap perfectly dense.
type slidingManager struct {
	objs map[heap.ObjectID]heap.Span
}

func (s *slidingManager) Name() string                       { return "slide" }
func (s *slidingManager) Reset(Config)                       { s.objs = make(map[heap.ObjectID]heap.Span) }
func (s *slidingManager) Free(id heap.ObjectID, _ heap.Span) { delete(s.objs, id) }

func (s *slidingManager) StartRound(mv Mover) {
	// Slide objects to the bottom in address order.
	ids := make([]heap.ObjectID, 0, len(s.objs))
	for id := range s.objs {
		ids = append(ids, id)
	}
	// insertion sort by address (tiny n in tests)
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && s.objs[ids[j]].Addr < s.objs[ids[j-1]].Addr; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var frontier word.Addr
	for _, id := range ids {
		sp := s.objs[id]
		if sp.Addr != frontier {
			freed, err := mv.Move(id, frontier)
			if err != nil {
				return // out of budget; stop compacting
			}
			if freed {
				delete(s.objs, id)
				continue
			}
			s.objs[id] = heap.Span{Addr: frontier, Size: sp.Size}
		}
		frontier += sp.Size
	}
}

func (s *slidingManager) Allocate(id heap.ObjectID, size word.Size, _ Mover) (word.Addr, error) {
	var frontier word.Addr
	for _, sp := range s.objs {
		if sp.End() > frontier {
			frontier = sp.End()
		}
	}
	s.objs[id] = heap.Span{Addr: frontier, Size: size}
	return frontier, nil
}

func cfg() Config {
	return Config{M: 1024, N: 64, C: budget.NoCompaction}
}

func TestEngineBasicRun(t *testing.T) {
	prog := NewScript("p", []ScriptRound{
		{Allocs: []word.Size{10, 20, 30}},
		{FreeRefs: []int{1}, Allocs: []word.Size{5}},
	})
	e, err := NewEngine(cfg(), prog, &bumpManager{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocs != 4 || res.Frees != 1 {
		t.Fatalf("allocs=%d frees=%d", res.Allocs, res.Frees)
	}
	if res.HighWater != 65 { // 10+20+30+5 bump allocated
		t.Fatalf("high water = %d, want 65", res.HighWater)
	}
	if res.Allocated != 65 || res.MaxLive != 60 {
		t.Fatalf("allocated=%d maxLive=%d", res.Allocated, res.MaxLive)
	}
	if sp, ok := prog.PlacementOf(2); !ok || sp.Addr != 30 {
		t.Fatalf("placement of third object: %v %v", sp, ok)
	}
	if res.WasteFactor() <= 0 {
		t.Fatalf("waste factor = %v", res.WasteFactor())
	}
}

func TestEngineRejectsOverM(t *testing.T) {
	prog := NewScript("p", []ScriptRound{{Allocs: []word.Size{64, 64}}})
	c := cfg()
	c.M = 100
	e, _ := NewEngine(c, prog, &bumpManager{})
	_, err := e.Run()
	if !errors.Is(err, ErrProgram) {
		t.Fatalf("want ErrProgram, got %v", err)
	}
	if !strings.Contains(err.Error(), "live bound") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestEngineRejectsBadSizes(t *testing.T) {
	for _, sz := range []word.Size{0, -3, 65} {
		prog := NewScript("p", []ScriptRound{{Allocs: []word.Size{sz}}})
		e, _ := NewEngine(cfg(), prog, &bumpManager{})
		if _, err := e.Run(); !errors.Is(err, ErrProgram) {
			t.Fatalf("size %d: want ErrProgram, got %v", sz, err)
		}
	}
}

func TestEngineEnforcesPow2(t *testing.T) {
	c := cfg()
	c.Pow2Only = true
	prog := NewScript("p", []ScriptRound{{Allocs: []word.Size{12}}})
	e, _ := NewEngine(c, prog, &bumpManager{})
	if _, err := e.Run(); !errors.Is(err, ErrProgram) {
		t.Fatalf("want ErrProgram for non-pow2 size, got %v", err)
	}
	prog2 := NewScript("p", []ScriptRound{{Allocs: []word.Size{16}}})
	e2, _ := NewEngine(c, prog2, &bumpManager{})
	if _, err := e2.Run(); err != nil {
		t.Fatalf("pow2 size rejected: %v", err)
	}
}

func TestEngineRejectsDoubleFree(t *testing.T) {
	prog := NewScript("p", []ScriptRound{
		{Allocs: []word.Size{8}},
		{FreeRefs: []int{0}},
		{FreeRefs: []int{0}},
	})
	e, _ := NewEngine(cfg(), prog, &bumpManager{})
	if _, err := e.Run(); !errors.Is(err, ErrProgram) {
		t.Fatalf("want ErrProgram for double free, got %v", err)
	}
}

// overlapManager deliberately returns address 0 twice.
type overlapManager struct{ bumpManager }

func (o *overlapManager) Allocate(heap.ObjectID, word.Size, Mover) (word.Addr, error) {
	return 0, nil
}
func (o *overlapManager) Name() string { return "overlap" }

func TestEngineCatchesOverlappingManager(t *testing.T) {
	prog := NewScript("p", []ScriptRound{{Allocs: []word.Size{8, 8}}})
	e, _ := NewEngine(cfg(), prog, &overlapManager{})
	if _, err := e.Run(); !errors.Is(err, ErrManager) {
		t.Fatalf("want ErrManager, got %v", err)
	}
}

func TestEngineCatchesCapacityOverflow(t *testing.T) {
	c := cfg()
	c.Capacity = 16
	prog := NewScript("p", []ScriptRound{{Allocs: []word.Size{8, 8, 8}}})
	e, _ := NewEngine(c, prog, &bumpManager{})
	if _, err := e.Run(); !errors.Is(err, ErrManager) {
		t.Fatalf("want ErrManager for capacity overflow, got %v", err)
	}
}

func TestEngineBudgetEnforcedOnMoves(t *testing.T) {
	// c=2: after allocating 16+16 words the quota is 16; moving both
	// objects (32 words) must fail at the second move.
	c := cfg()
	c.C = 2
	prog := NewScript("p", []ScriptRound{
		{Allocs: []word.Size{16, 16}},
		{}, // round whose StartRound tries to compact
	})
	mgr := &slidingManager{}
	e, _ := NewEngine(c, prog, mgr)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Moved > res.Allocated/2 {
		t.Fatalf("budget violated: moved %d of %d", res.Moved, res.Allocated)
	}
}

func TestEngineUnlimitedCompactionDense(t *testing.T) {
	// With unlimited budget, the sliding manager keeps HS == live peak:
	// allocate 4, free the middle two, allocate 2 more after compaction.
	c := cfg()
	c.C = 0
	prog := NewScript("p", []ScriptRound{
		{Allocs: []word.Size{16, 16, 16, 16}},
		{FreeRefs: []int{1, 2}},
		{Allocs: []word.Size{16, 16}},
	})
	mgr := &slidingManager{}
	e, _ := NewEngine(c, prog, mgr)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.HighWater != 64 {
		t.Fatalf("high water = %d, want 64 (perfect compaction)", res.HighWater)
	}
	if res.Moves == 0 {
		t.Fatalf("sliding manager never moved")
	}
}

// freeOnMoveProg frees any moved object, mimicking P_F's rule.
type freeOnMoveProg struct{ Script }

func TestEngineFreeOnMove(t *testing.T) {
	prog := NewScript("p", []ScriptRound{
		{Allocs: []word.Size{16, 16}},
		{FreeRefs: []int{0}}, // hole at bottom; slide will move obj 1 down
		{Allocs: []word.Size{16}},
	})
	prog.FreeMoved = true
	c := cfg()
	c.C = 0
	mgr := &slidingManager{}
	e, _ := NewEngine(c, prog, mgr)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	// Object 1 was moved and instantly freed, so after round 2 only the
	// newly allocated object is live.
	if res.Frees != 2 {
		t.Fatalf("frees = %d, want 2 (one explicit, one on move)", res.Frees)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{M: 0, N: 1},
		{M: 10, N: 0},
		{M: 10, N: 20},
		{M: 16, N: 12, Pow2Only: true},
		{M: 16, N: 8, C: -5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, c)
		}
	}
	good := Config{M: 1 << 16, N: 1 << 8, C: 10, Pow2Only: true}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestRoundHook(t *testing.T) {
	prog := NewScript("p", []ScriptRound{
		{Allocs: []word.Size{8}},
		{Allocs: []word.Size{8}},
		{Allocs: []word.Size{8}},
	})
	e, _ := NewEngine(cfg(), prog, &bumpManager{})
	var hooks int
	e.RoundHook = func(r Result) { hooks++ }
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hooks != 3 {
		t.Fatalf("hook called %d times, want 3", hooks)
	}
}

func TestViewLookup(t *testing.T) {
	// A program that checks the view's Lookup agrees with Placed.
	var sawLive bool
	prog := &viewChecker{saw: &sawLive}
	e, _ := NewEngine(cfg(), prog, &bumpManager{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawLive {
		t.Fatalf("view lookup never confirmed a live object")
	}
}

type viewChecker struct {
	step int
	id   heap.ObjectID
	span heap.Span
	saw  *bool
}

func (v *viewChecker) Name() string { return "viewchecker" }
func (v *viewChecker) Step(view *View) ([]heap.ObjectID, []word.Size, bool) {
	defer func() { v.step++ }()
	if v.step == 0 {
		return nil, []word.Size{8}, false
	}
	if sp, ok := view.Lookup(v.id); ok && sp == v.span {
		*v.saw = true
	}
	return nil, nil, true
}
func (v *viewChecker) Placed(id heap.ObjectID, s heap.Span)           { v.id, v.span = id, s }
func (v *viewChecker) Moved(heap.ObjectID, heap.Span, heap.Span) bool { return false }
