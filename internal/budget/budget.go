// Package budget implements the compaction-budget accounting of the
// c-partial memory manager model (Bendersky & Petrank, POPL 2011;
// Cohen & Petrank, PLDI 2013).
//
// A c-partial memory manager may compact (move) at most s/c words at
// any point of the execution, where s is the total number of words the
// program has allocated so far. The Ledger tracks both quantities and
// rejects moves that would exceed the quota. A ledger with c = 0
// represents an unlimited compactor; a ledger with c = NoCompaction
// represents a manager that may never move objects.
package budget

import (
	"errors"
	"fmt"
	"math"

	"compaction/internal/word"
)

// NoCompaction is a sentinel compaction bound meaning "no moves at
// all" (c = ∞ in the paper's notation).
const NoCompaction = -1

// ErrExceeded is returned when a move would exceed the compaction
// quota.
var ErrExceeded = errors.New("budget: compaction quota exceeded")

// Ledger tracks allocated words s and moved words q, and enforces
// q <= s/c.
type Ledger struct {
	c         int64
	allocated word.Size // s: total words allocated so far
	moved     word.Size // q: total words moved so far
}

// NewLedger returns a ledger for a c-partial manager. c > 0 bounds
// compaction to 1/c of the allocated space; c == 0 allows unlimited
// compaction; c == NoCompaction forbids moves entirely.
func NewLedger(c int64) *Ledger {
	if c < NoCompaction {
		panic(fmt.Sprintf("budget.NewLedger: invalid compaction bound %d", c))
	}
	return &Ledger{c: c}
}

// Bound returns the compaction bound c (0 = unlimited, NoCompaction =
// none).
func (l *Ledger) Bound() int64 { return l.c }

// Allocated returns s, the total words allocated so far.
func (l *Ledger) Allocated() word.Size { return l.allocated }

// Moved returns q, the total words moved so far.
func (l *Ledger) Moved() word.Size { return l.moved }

// Quota returns the maximum number of words that may have been moved
// at this point, i.e. s/c (or an effectively unlimited value for
// unlimited ledgers, 0 for non-moving ones).
//
//compactlint:noalloc
func (l *Ledger) Quota() word.Size {
	switch l.c {
	case 0:
		return 1 << 62
	case NoCompaction:
		return 0
	default:
		return l.allocated / l.c
	}
}

// Remaining returns the number of words that may still be moved now.
//
//compactlint:noalloc
func (l *Ledger) Remaining() word.Size {
	q := l.Quota()
	if l.moved >= q {
		return 0
	}
	return q - l.moved
}

// RecordAlloc credits the ledger with an allocation of size words.
// The total saturates at the maximum representable size instead of
// wrapping negative, which would silently zero the quota.
//
//compactlint:noalloc
func (l *Ledger) RecordAlloc(size word.Size) {
	if size <= 0 {
		panic(fmt.Sprintf("budget.RecordAlloc: non-positive size %d", size))
	}
	if l.allocated > math.MaxInt64-size {
		l.allocated = math.MaxInt64
		return
	}
	l.allocated += size
}

// Move debits size words of compaction. It fails (and records nothing)
// if the quota would be exceeded.
//
//compactlint:noalloc
func (l *Ledger) Move(size word.Size) error {
	if size <= 0 {
		return fmt.Errorf("budget.Move: non-positive size %d", size)
	}
	if l.c == NoCompaction {
		return fmt.Errorf("%w: manager is non-moving", ErrExceeded)
	}
	// Compare as moved > quota - size: the naive moved+size can wrap
	// negative when the ledger sits near the representable maximum.
	if q := l.Quota(); size > q || l.moved > q-size {
		return fmt.Errorf("%w: moved %d + %d > quota %d (allocated %d, c=%d)",
			ErrExceeded, l.moved, size, q, l.allocated, l.c)
	}
	l.moved += size
	return nil
}

// CanMove reports whether size words could be moved now without
// exceeding the quota.
//
//compactlint:noalloc
func (l *Ledger) CanMove(size word.Size) bool {
	if size <= 0 || l.c == NoCompaction {
		return false
	}
	q := l.Quota()
	return size <= q && l.moved <= q-size
}

// Snapshot returns (s, q) for reporting.
//
//compactlint:noalloc
func (l *Ledger) Snapshot() (allocated, moved word.Size) {
	return l.allocated, l.moved
}

func (l *Ledger) String() string {
	switch l.c {
	case 0:
		return fmt.Sprintf("budget{unlimited, s=%d, q=%d}", l.allocated, l.moved)
	case NoCompaction:
		return fmt.Sprintf("budget{non-moving, s=%d}", l.allocated)
	default:
		return fmt.Sprintf("budget{c=%d, s=%d, q=%d/%d}", l.c, l.allocated, l.moved, l.Quota())
	}
}
