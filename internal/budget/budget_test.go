package budget

import (
	"errors"
	"math/rand"
	"testing"
)

func TestQuotaGrowsWithAllocation(t *testing.T) {
	l := NewLedger(10)
	if l.Quota() != 0 || l.CanMove(1) {
		t.Fatalf("fresh ledger should have zero quota")
	}
	l.RecordAlloc(100)
	if l.Quota() != 10 {
		t.Fatalf("quota = %d, want 10", l.Quota())
	}
	if err := l.Move(10); err != nil {
		t.Fatalf("move within quota failed: %v", err)
	}
	if err := l.Move(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("move beyond quota: %v", err)
	}
	l.RecordAlloc(50)
	if l.Remaining() != 5 {
		t.Fatalf("remaining = %d, want 5", l.Remaining())
	}
	if err := l.Move(5); err != nil {
		t.Fatalf("move after refill failed: %v", err)
	}
}

func TestNonMovingLedger(t *testing.T) {
	l := NewLedger(NoCompaction)
	l.RecordAlloc(1000)
	if l.CanMove(1) {
		t.Fatalf("non-moving ledger claims it can move")
	}
	if err := l.Move(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("non-moving move: %v", err)
	}
	if l.Quota() != 0 {
		t.Fatalf("non-moving quota = %d", l.Quota())
	}
}

func TestUnlimitedLedger(t *testing.T) {
	l := NewLedger(0)
	l.RecordAlloc(1)
	if err := l.Move(1 << 40); err != nil {
		t.Fatalf("unlimited move failed: %v", err)
	}
	if !l.CanMove(1 << 40) {
		t.Fatalf("unlimited ledger refuses move")
	}
}

func TestMoveRejectsNonPositive(t *testing.T) {
	l := NewLedger(10)
	l.RecordAlloc(100)
	if err := l.Move(0); err == nil {
		t.Fatalf("zero move accepted")
	}
	if err := l.Move(-5); err == nil {
		t.Fatalf("negative move accepted")
	}
}

func TestRecordAllocPanicsOnNonPositive(t *testing.T) {
	l := NewLedger(10)
	for _, s := range []int64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RecordAlloc(%d) did not panic", s)
				}
			}()
			l.RecordAlloc(s)
		}()
	}
}

func TestNewLedgerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewLedger(-2) did not panic")
		}
	}()
	NewLedger(-2)
}

func TestSnapshotAndString(t *testing.T) {
	l := NewLedger(4)
	l.RecordAlloc(40)
	if err := l.Move(3); err != nil {
		t.Fatal(err)
	}
	s, q := l.Snapshot()
	if s != 40 || q != 3 {
		t.Fatalf("snapshot = (%d,%d)", s, q)
	}
	for _, c := range []int64{0, NoCompaction, 4} {
		if NewLedger(c).String() == "" {
			t.Fatalf("empty String for c=%d", c)
		}
	}
}

// Property: after any sequence of allocations and accepted moves,
// the invariant moved <= allocated/c holds.
func TestInvariantUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		c := int64(1 + rng.Intn(100))
		l := NewLedger(c)
		for step := 0; step < 500; step++ {
			if rng.Intn(2) == 0 {
				l.RecordAlloc(int64(1 + rng.Intn(1000)))
			} else {
				size := int64(1 + rng.Intn(100))
				err := l.Move(size)
				if err == nil && !errors.Is(err, ErrExceeded) && l.Moved() > l.Allocated()/c {
					t.Fatalf("invariant violated: q=%d > s/c=%d", l.Moved(), l.Allocated()/c)
				}
			}
			if l.Moved() > l.Allocated()/c {
				t.Fatalf("invariant violated: q=%d s=%d c=%d", l.Moved(), l.Allocated(), c)
			}
			if l.CanMove(l.Remaining()+1) && l.Remaining() >= 0 {
				t.Fatalf("CanMove accepts more than Remaining")
			}
		}
	}
}
