package budget

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"compaction/internal/word"
)

// qc keeps the property checks fast but well past the interesting
// boundaries.
var qc = &quick.Config{MaxCount: 500}

// Property: a NoCompaction ledger never moves anything, regardless of
// the allocation history or the requested size.
func TestQuickNonMovingNeverMoves(t *testing.T) {
	prop := func(allocs []uint16, size uint16) bool {
		l := NewLedger(NoCompaction)
		for _, a := range allocs {
			l.RecordAlloc(word.Size(a) + 1)
		}
		s := word.Size(size) + 1
		return l.Quota() == 0 && !l.CanMove(s) && errors.Is(l.Move(s), ErrExceeded)
	}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}

// Property: an unlimited (c == 0) ledger accepts every positive move,
// even with zero allocations on the books.
func TestQuickUnlimitedAlwaysMoves(t *testing.T) {
	prop := func(allocs []uint16, moves []uint16) bool {
		l := NewLedger(0)
		for _, a := range allocs {
			l.RecordAlloc(word.Size(a) + 1)
		}
		for _, m := range moves {
			s := word.Size(m) + 1
			if !l.CanMove(s) || l.Move(s) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}

// Property: for any c > 0 and any interleaving of allocations and
// attempted moves, the invariant q <= s/c holds after every operation,
// CanMove agrees with Move, and rejected moves leave the ledger
// untouched.
func TestQuickPartialInvariant(t *testing.T) {
	prop := func(c uint8, ops []int16) bool {
		l := NewLedger(int64(c%100) + 1)
		for _, op := range ops {
			if op >= 0 {
				l.RecordAlloc(word.Size(op) + 1)
			} else {
				size := word.Size(-int64(op))
				can := l.CanMove(size)
				before := l.Moved()
				err := l.Move(size)
				if can != (err == nil) {
					return false
				}
				if err != nil && l.Moved() != before {
					return false // failed move must not debit
				}
			}
			if l.Moved() > l.Allocated()/l.Bound() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerNearOverflow pins the arithmetic at the top of the int64
// range: allocation totals saturate instead of wrapping negative, and
// quota comparisons must not wrap when moved + size overflows.
func TestLedgerNearOverflow(t *testing.T) {
	l := NewLedger(1)
	l.RecordAlloc(math.MaxInt64 - 5)
	l.RecordAlloc(10) // would wrap; must saturate
	if l.Allocated() != math.MaxInt64 {
		t.Fatalf("allocation total did not saturate: %d", l.Allocated())
	}
	if q := l.Quota(); q != math.MaxInt64 {
		t.Fatalf("quota = %d", q)
	}
	// Consume the entire quota in one move, then ask for one more word:
	// the naive moved+size comparison wraps negative here and admits it.
	if err := l.Move(math.MaxInt64); err != nil {
		t.Fatalf("exact-quota move rejected: %v", err)
	}
	if l.CanMove(1) {
		t.Fatal("CanMove wrapped past a full quota")
	}
	if err := l.Move(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("over-quota move after saturation: %v", err)
	}
	if l.Remaining() != 0 {
		t.Fatalf("remaining = %d", l.Remaining())
	}
}

// TestLedgerHugeMoveRequest: a single move far beyond the quota must
// be rejected even when moved+size overflows int64.
func TestLedgerHugeMoveRequest(t *testing.T) {
	l := NewLedger(2)
	l.RecordAlloc(100)
	if err := l.Move(50); err != nil {
		t.Fatal(err)
	}
	if err := l.Move(math.MaxInt64); !errors.Is(err, ErrExceeded) {
		t.Fatalf("huge move accepted: %v", err)
	}
	if l.CanMove(math.MaxInt64) {
		t.Fatal("CanMove accepted a wrapping size")
	}
	if l.Moved() != 50 {
		t.Fatalf("rejected move debited the ledger: %d", l.Moved())
	}
}
