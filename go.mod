module compaction

go 1.22
